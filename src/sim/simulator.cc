#include "sim/simulator.hh"

#include <iomanip>

#include "common/logging.hh"
#include "common/random.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{

namespace
{

/** Component salt for deriveSeed: the wrong-path synthesis RNG. */
constexpr std::uint64_t kWrongPathSalt = 0x77f00dull;

/** Thread the run's master seed into every stochastic component the
 *  config controls; with seed 0 the per-component defaults apply. */
void
threadSeed(SimConfig &cfg)
{
    if (cfg.seed != 0)
        cfg.core.fetch.wrongPathSeed =
            deriveSeed(cfg.seed, kWrongPathSalt);
}

} // namespace

Simulator::Simulator(TraceStream &stream, const SimConfig &config)
    : cfg(config)
{
    cfg.validate();
    threadSeed(cfg);
    theCore = std::make_unique<Core>(stream, cfg.core);
}

Simulator::Simulator(const std::string &benchmark, const SimConfig &config)
    : cfg(config)
{
    cfg.validate();
    threadSeed(cfg);
    ownedStream = makeBenchmarkStream(benchmark, cfg.seed);
    theCore = std::make_unique<Core>(*ownedStream, cfg.core);
}

SimResults
Simulator::run()
{
    if (cfg.sampling.enable)
        return runSampled();

    Core &c = *theCore;
    if (cfg.skipInsts > 0)
        c.runUntilCommitted(cfg.skipInsts);
    c.resetStats();
    std::uint64_t target = c.committedInsts() + cfg.measureInsts;
    c.runUntilCommitted(target);

    SimResults r;
    collectMetrics(r.metrics);
    return r;
}

SimResults
Simulator::runSampled()
{
    Core &c = *theCore;
    const SamplingConfig &sp = cfg.sampling;
    // Per validate(): detailedInsts >= 1, warmup+detailed <= period,
    // period <= measure, so ffInsts and nIntervals are well defined.
    const std::uint64_t ffInsts =
        sp.periodInsts - sp.warmupInsts - sp.detailedInsts;
    const std::uint64_t nIntervals = cfg.measureInsts / sp.periodInsts;

    // The initial skip goes through the same functional-warming path as
    // the inter-interval fast-forwards — that is the whole point of
    // sampling: the paper's 100M-skip warm-up becomes nearly free.
    if (cfg.skipInsts > 0)
        c.fastForward(cfg.skipInsts, sp.functionalWarming);

    stats::SampleEstimator ipcSampled{
        "ipc.sampled", "sampled-IPC estimator over detailed intervals"};

    // One record, revisited in place every interval: the stats tree's
    // schema is fixed after construction, so walks after the first
    // overwrite values without rebuilding names — record construction
    // would otherwise dominate short sampled runs. Parallel arrays
    // accumulate the per-column aggregates; UInt metrics (counters,
    // histogram buckets) sum across intervals, Real metrics (rates,
    // ratios) take the unweighted mean — for core.ipc that mean of
    // interval IPCs *is* the SMARTS point estimator the
    // core.ipc.sampled.* stats quantify.
    SimResults r;
    MetricsRecord &rec = r.metrics;
    std::vector<std::uint64_t> usum;
    std::vector<double> rsum;
    std::uint64_t measured = 0;
    for (std::uint64_t i = 0; i < nIntervals; ++i) {
        if (ffInsts > 0)
            c.fastForward(ffInsts, sp.functionalWarming);
        if (sp.warmupInsts > 0)
            c.runUntilCommitted(c.committedInsts() + sp.warmupInsts);
        c.resetStats();
        c.runUntilCommitted(c.committedInsts() + sp.detailedInsts);

        c.visitStats(rec);
        if (nIntervals > 1) {
            const std::vector<Metric> &cols = rec.all();
            if (measured == 0) {
                usum.assign(cols.size(), 0);
                rsum.assign(cols.size(), 0.0);
            }
            VPR_ASSERT(cols.size() == usum.size(),
                       "interval metric schema changed mid-run");
            for (std::size_t k = 0; k < cols.size(); ++k) {
                if (cols[k].kind == Metric::Kind::UInt)
                    usum[k] += cols[k].uval;
                else
                    rsum[k] += cols[k].rval;
            }
        }
        ipcSampled.sample(rec.real("core.ipc"));
        ++measured;
        if (c.done())
            break;
    }
    VPR_ASSERT(measured > 0, "sampled run measured zero intervals");

    // Fold the accumulated aggregates back into the record. A run that
    // measured a single interval is already its own aggregate (sum and
    // mean of one sample), so the record stands as visited.
    if (measured > 1) {
        for (std::size_t k = 0; k < rec.all().size(); ++k) {
            const Metric &m = rec.all()[k];
            if (m.kind == Metric::Kind::UInt)
                rec.setUInt(m.name, m.desc, usum[k]);
            else
                rec.setReal(m.name, m.desc,
                            rsum[k] / static_cast<double>(measured));
        }
    }

    // Append the estimator through the same group/visit machinery as
    // every other stat so it lands as core.ipc.sampled.* in the schema.
    stats::StatGroup sampledGroup{"core"};
    sampledGroup.add(&ipcSampled);
    sampledGroup.visit(rec);
    return r;
}

void
Simulator::collectMetrics(MetricsRecord &m)
{
    // The record is one walk of the core's stats tree: every component
    // and stage owns its StatGroup, so a stat added anywhere appears
    // here (and in every exporter downstream) with no glue.
    theCore->visitStats(m);
}

void
Simulator::printReport(std::ostream &os, const SimResults &r) const
{
    os << "scheme            " << renameSchemeName(cfg.core.scheme)
       << "\n";
    os << "physRegs/file     " << cfg.core.rename.numPhysRegs << "\n";
    os << "NRR (int/fp)      " << cfg.core.rename.nrrInt << "/"
       << cfg.core.rename.nrrFp << "\n";
    if (r.metrics.has("core.ipc.sampled.mean")) {
        os << "sampled ipc       " << std::fixed << std::setprecision(4)
           << r.metrics.real("core.ipc.sampled.mean") << " +/- "
           << r.metrics.real("core.ipc.sampled.ci95")
           << std::defaultfloat << "  (95% CI over "
           << r.metrics.counter("core.ipc.sampled.intervals")
           << " intervals)\n";
    }
    // The record is self-describing: one line per metric. Histogram
    // buckets are elided — the moments summarize each distribution and
    // the full shape travels in the --out record files.
    for (const Metric &m : r.metrics.all()) {
        if (m.name.find(".hist[") != std::string::npos)
            continue;
        os << std::left << std::setw(32) << m.name << " " << std::right
           << std::setw(14);
        if (m.kind == Metric::Kind::UInt)
            os << m.uval;
        else
            os << std::fixed << std::setprecision(4) << m.rval
               << std::defaultfloat;
        os << "  # " << m.desc << "\n";
    }
}

} // namespace vpr
