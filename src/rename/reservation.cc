#include "rename/reservation.hh"

#include "common/logging.hh"

namespace vpr
{

ReservationTracker::ReservationTracker(unsigned nrr_) : nrr(nrr_)
{
    VPR_ASSERT(nrr >= 1, "NRR must be at least 1 to avoid deadlock");
}

void
ReservationTracker::onRename(InstSeqNum seq)
{
    VPR_ASSERT(entries.empty() || entries.back().seq < seq,
               "rename out of program order");
    entries.push_back({seq, false});
}

void
ReservationTracker::onAllocate(InstSeqNum seq)
{
    for (auto &e : entries) {
        if (e.seq == seq) {
            VPR_ASSERT(!e.allocated, "double allocation for sn:", seq);
            e.allocated = true;
            return;
        }
    }
    VPR_PANIC("onAllocate: unknown instruction sn:", seq);
}

void
ReservationTracker::onCommit(InstSeqNum seq)
{
    VPR_ASSERT(!entries.empty() && entries.front().seq == seq,
               "commit of non-oldest dest instruction sn:", seq);
    entries.pop_front();
}

void
ReservationTracker::onSquash(InstSeqNum seq)
{
    VPR_ASSERT(!entries.empty() && entries.back().seq == seq,
               "squash of non-youngest dest instruction sn:", seq);
    entries.pop_back();
}

bool
ReservationTracker::isReserved(InstSeqNum seq) const
{
    std::size_t lim = reservedCount();
    for (std::size_t i = 0; i < lim; ++i)
        if (entries[i].seq == seq)
            return true;
    return false;
}

unsigned
ReservationTracker::usedInReserved() const
{
    std::size_t lim = reservedCount();
    unsigned used = 0;
    for (std::size_t i = 0; i < lim; ++i)
        if (entries[i].allocated)
            ++used;
    return used;
}

bool
ReservationTracker::mayAllocate(InstSeqNum seq, std::size_t freeRegs) const
{
    if (freeRegs == 0)
        return false;
    // Reserved instructions may always take a register (one is kept for
    // each of them by construction).
    if (isReserved(seq))
        return true;
    // Younger instructions must leave enough registers for the
    // not-yet-allocated part of the reserved set.
    unsigned needed = nrr - usedInReserved();
    return freeRegs > needed;
}

} // namespace vpr
