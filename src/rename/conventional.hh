/**
 * @file
 * Conventional register renaming (the paper's baseline).
 *
 * R10000-style: a map table translates each logical register to a
 * physical register; the destination gets a free physical register at
 * decode; when an instruction commits, the physical register allocated
 * by the *previous* instruction with the same logical destination is
 * freed. Source operands are renamed to the last mapping; readiness is
 * tracked with a per-physical-register scoreboard bit.
 */

#ifndef VPR_RENAME_CONVENTIONAL_HH
#define VPR_RENAME_CONVENTIONAL_HH

#include <vector>

#include "rename/rename_iface.hh"

namespace vpr
{

/** The R10000-style baseline renamer. */
class ConventionalRename : public RenameManager
{
  public:
    explicit ConventionalRename(const RenameConfig &config);

    RenameScheme scheme() const override
    {
        return RenameScheme::Conventional;
    }

    void tick(Cycle now) override;
    bool canRename(unsigned nIntDests, unsigned nFpDests) const override;
    void renameInst(DynInst &inst, Cycle now) override;
    bool tryIssue(DynInst &inst, Cycle now) override;
    CompleteResult complete(DynInst &inst, Cycle now) override;
    void commitInst(DynInst &inst, Cycle now) override;
    void squashInst(DynInst &inst, Cycle now) override;

    std::size_t freePhysRegs(RegClass cls) const override;
    void checkInvariants() const override;
    void reinit() override;
    void visitState(StateVisitor &v) override;

    /** Current mapping of a logical register (tests). */
    PhysRegId
    mapping(RegClass cls, std::uint16_t logical) const
    {
        return mapTable[classIdx(cls)][logical];
    }

    /** Scoreboard bit of a physical register (tests). */
    bool
    isReady(RegClass cls, PhysRegId reg) const
    {
        return ready[classIdx(cls)][reg];
    }

  protected:
    PhysRegId allocReg(RegClass cls, Cycle now);
    void freeReg(RegClass cls, PhysRegId reg, Cycle now);

    /** logical -> physical, per class. */
    std::vector<PhysRegId> mapTable[kNumRegClasses];
    /** scoreboard: value present in the physical register. */
    std::vector<bool> ready[kNumRegClasses];
    /** free pool, LIFO. */
    std::vector<PhysRegId> freeList[kNumRegClasses];
};

} // namespace vpr

#endif // VPR_RENAME_CONVENTIONAL_HH
