/** @file Unit tests for the fetch unit. */

#include <gtest/gtest.h>

#include "core/fetch.hh"
#include "trace/builder.hh"

namespace vpr
{
namespace
{

FetchConfig
cfgStall()
{
    FetchConfig c;
    c.wrongPath = WrongPathMode::Stall;
    return c;
}

FetchConfig
cfgSynth()
{
    FetchConfig c;
    c.wrongPath = WrongPathMode::Synthesize;
    return c;
}

TEST(Fetch, FetchesUpToWidthPerCycle)
{
    TraceBuilder b;
    for (int i = 0; i < 20; ++i)
        b.nop();
    auto stream = b.stream();
    FetchUnit f(*stream, cfgStall());
    f.tick(1);
    int n = 0;
    while (f.hasInst()) {
        f.pop();
        ++n;
    }
    EXPECT_EQ(n, 8);
}

TEST(Fetch, GroupEndsAtPredictedTakenBranch)
{
    TraceBuilder b;
    b.nop();
    b.branch(RegId::intReg(1), true, 0x9000);  // predicted taken (init)
    b.nop();
    b.nop();
    auto stream = b.stream();
    FetchUnit f(*stream, cfgStall());
    f.tick(1);
    int n = 0;
    while (f.hasInst()) {
        f.pop();
        ++n;
    }
    EXPECT_EQ(n, 2);  // nop + branch only; rest next cycle
    f.tick(2);
    EXPECT_TRUE(f.hasInst());
}

TEST(Fetch, MispredictMarksBranchAndStalls)
{
    TraceBuilder b;
    // 2-bit counters initialize weakly taken: a not-taken branch
    // mispredicts on first sight.
    b.branch(RegId::intReg(1), false, 0x9000);
    b.nop();
    auto stream = b.stream();
    FetchUnit f(*stream, cfgStall());
    f.tick(1);
    ASSERT_TRUE(f.hasInst());
    auto fi = f.pop();
    EXPECT_TRUE(fi.mispredictedBranch);
    EXPECT_TRUE(f.awaitingResolve());
    EXPECT_FALSE(f.hasInst());
    // Stall mode: no instructions while waiting.
    f.tick(2);
    EXPECT_FALSE(f.hasInst());
    // Resolution redirects with the configured delay.
    f.resolveBranch(10);
    f.tick(10);  // still within redirect delay
    EXPECT_FALSE(f.hasInst());
    f.tick(11);
    ASSERT_TRUE(f.hasInst());
    EXPECT_TRUE(f.pop().si.isNop());
}

TEST(Fetch, SynthesizeModeProducesWrongPath)
{
    TraceBuilder b;
    b.branch(RegId::intReg(1), false, 0x9000);
    b.nop();
    auto stream = b.stream();
    FetchUnit f(*stream, cfgSynth());
    f.tick(1);
    f.pop();  // the mispredicted branch
    f.tick(2);
    ASSERT_TRUE(f.hasInst());
    auto wp = f.pop();
    EXPECT_TRUE(wp.wrongPath);
    EXPECT_FALSE(wp.si.isMem());
    EXPECT_FALSE(wp.si.isBranch());
    EXPECT_GT(f.fetchedWrongPath(), 0u);
}

TEST(Fetch, ResolveClearsWrongPathBuffer)
{
    TraceBuilder b;
    b.branch(RegId::intReg(1), false, 0x9000);
    b.nop();
    auto stream = b.stream();
    FetchUnit f(*stream, cfgSynth());
    f.tick(1);
    f.pop();
    f.tick(2);  // buffer fills with wrong path
    f.resolveBranch(5);
    EXPECT_FALSE(f.hasInst());
    f.tick(7);
    ASSERT_TRUE(f.hasInst());
    EXPECT_FALSE(f.peek().wrongPath);
}

TEST(Fetch, CountsBranchesAndMispredicts)
{
    TraceBuilder b;
    // Loop-like: taken branches are predicted correctly from the start.
    for (int i = 0; i < 10; ++i)
        b.branch(RegId::intReg(1), true, 0x1000);
    auto stream = b.stream();
    FetchUnit f(*stream, cfgStall());
    for (Cycle c = 1; c <= 20; ++c) {
        f.tick(c);
        while (f.hasInst())
            f.pop();
    }
    EXPECT_EQ(f.branches(), 10u);
    EXPECT_EQ(f.mispredicts(), 0u);
    EXPECT_EQ(f.fetchedReal(), 10u);
}

TEST(Fetch, DoneAfterTraceExhausted)
{
    TraceBuilder b;
    b.nop();
    auto stream = b.stream();
    FetchUnit f(*stream, cfgStall());
    EXPECT_FALSE(f.done());
    f.tick(1);
    f.pop();
    f.tick(2);
    EXPECT_TRUE(f.done());
}

TEST(Fetch, BufferCapacityBoundsFetch)
{
    TraceBuilder b;
    for (int i = 0; i < 64; ++i)
        b.nop();
    auto stream = b.stream();
    FetchConfig cfg = cfgStall();
    cfg.bufferCapacity = 10;
    FetchUnit f(*stream, cfg);
    f.tick(1);
    f.tick(2);  // would exceed capacity
    int n = 0;
    while (f.hasInst()) {
        f.pop();
        ++n;
    }
    EXPECT_EQ(n, 10);
}

TEST(FetchDeath, ResolveWithoutMispredictPanics)
{
    TraceBuilder b;
    b.nop();
    auto stream = b.stream();
    FetchUnit f(*stream, cfgStall());
    EXPECT_DEATH(f.resolveBranch(1), "no outstanding");
}

} // namespace
} // namespace vpr
