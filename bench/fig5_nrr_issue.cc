/**
 * @file
 * Figure 5 of the paper: speedup of the virtual-physical organization
 * with register allocation at *issue* over the conventional scheme, for
 * NRR in {1, 4, 8, 16, 24, 32}.
 */

#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);
    printSpeedupFigure(
        "Figure 5: VP speedup over conventional, issue allocation",
        RenameScheme::VPAllocAtIssue, {1, 4, 8, 16, 24, 32});
    std::cout << "\npaper reference: optimal NRR is 32 (24 equal on "
                 "average), giving ~4% over conventional — far less "
                 "than write-back allocation.\n";
    return 0;
}
