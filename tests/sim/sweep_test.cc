/**
 * @file
 * Sweep-driver tests: axis parsing, cross-product grid order, the
 * acceptance property that a --sweep over (regfile size × scheme)
 * reproduces the fig7_regfile_size grid cell for cell and record for
 * record, provenance verification, and --jobs invariance of exported
 * records.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

#include "figures.hh"
#include "sim/params.hh"
#include "sim/results_io.hh"
#include "sim/sweep.hh"

namespace vpr
{
namespace
{

TEST(SweepAxis, ParseAcceptsKeyAndValueList)
{
    SweepAxis axis =
        parseSweepAxis("core.rename.regfile_size=48,64,96");
    EXPECT_EQ(axis.key, "core.rename.regfile_size");
    EXPECT_EQ(axis.values,
              (std::vector<std::string>{"48", "64", "96"}));
    SweepAxis one = parseSweepAxis("seed=5");
    EXPECT_EQ(one.values, (std::vector<std::string>{"5"}));
}

TEST(SweepAxisDeath, ParseRejectsGarbage)
{
    EXPECT_EXIT(parseSweepAxis("core.scheme"),
                ::testing::ExitedWithCode(1), "bad sweep spec");
    EXPECT_EXIT(parseSweepAxis("=1,2"), ::testing::ExitedWithCode(1),
                "bad sweep spec");
    EXPECT_EXIT(parseSweepAxis("seed=1,,2"),
                ::testing::ExitedWithCode(1), "empty value");
}

TEST(SweepGrid, CrossProductOrderIsBenchOuterRightmostFastest)
{
    SimConfig base;
    std::vector<SweepAxis> axes = {
        parseSweepAxis("core.cache.miss_penalty=10,20"),
        parseSweepAxis("core.scheme=conv,vp-wb")};
    std::vector<GridCell> cells =
        buildSweepGrid({"a", "b"}, base, axes);
    ASSERT_EQ(cells.size(), 8u);

    auto check = [&cells](std::size_t i, const std::string &bench,
                          unsigned miss, RenameScheme scheme) {
        EXPECT_EQ(cells[i].benchmark, bench) << "cell " << i;
        EXPECT_EQ(cells[i].config.core.cache.missPenalty, miss)
            << "cell " << i;
        EXPECT_EQ(cells[i].config.core.scheme, scheme) << "cell " << i;
    };
    check(0, "a", 10, RenameScheme::Conventional);
    check(1, "a", 10, RenameScheme::VPAllocAtWriteback);
    check(2, "a", 20, RenameScheme::Conventional);
    check(3, "a", 20, RenameScheme::VPAllocAtWriteback);
    check(4, "b", 10, RenameScheme::Conventional);
    check(7, "b", 20, RenameScheme::VPAllocAtWriteback);
}

TEST(SweepGrid, NoAxesMeansOneCellPerBenchmark)
{
    SimConfig base;
    std::vector<GridCell> cells = buildSweepGrid({"x", "y"}, base, {});
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].benchmark, "x");
    EXPECT_EQ(cells[1].benchmark, "y");
}

TEST(SweepGridDeath, UnknownAxisKeyIsFatal)
{
    SimConfig base;
    std::vector<SweepAxis> axes = {parseSweepAxis("core.warp=1,2")};
    EXPECT_EXIT(buildSweepGrid({"a"}, base, axes),
                ::testing::ExitedWithCode(1), "unknown parameter");
}

/**
 * The acceptance property: sweeping (regfile size × scheme) from the
 * bench base config enumerates exactly the fig7_regfile_size grid —
 * same cells, same order, same full provenance — so the exported
 * records are byte-identical too.
 */
TEST(SweepEquivalence, SweepReproducesTheFig7Grid)
{
    const bench::FigureDef *def = bench::findFigure("fig7_regfile_size");
    ASSERT_NE(def, nullptr);
    const std::vector<GridCell> figCells = def->build();

    const std::vector<SweepAxis> axes = {
        parseSweepAxis("core.rename.regfile_size=48,64,96"),
        parseSweepAxis("core.scheme=conv,vp-wb")};
    const std::vector<GridCell> sweepCells =
        buildSweepGrid(benchmarkNames(), bench::experimentConfig(), axes);

    ASSERT_EQ(sweepCells.size(), figCells.size());
    for (std::size_t i = 0; i < figCells.size(); ++i) {
        EXPECT_EQ(sweepCells[i].benchmark, figCells[i].benchmark)
            << "cell " << i;
        EXPECT_EQ(cellConfigValues(sweepCells[i]),
                  cellConfigValues(figCells[i]))
            << "cell " << i;
    }
    EXPECT_EQ(gridConfigDigest(sweepCells), gridConfigDigest(figCells));

    // Without running any simulation, the exported record files (empty
    // metric schema) must already be byte-identical: same metadata,
    // digest, header and provenance rows.
    std::vector<std::size_t> indices(figCells.size());
    std::iota(indices.begin(), indices.end(), 0);
    std::vector<SimResults> empty(figCells.size());
    std::ostringstream fig, sweep;
    writeResultsCsv(fig, def->name, ShardSpec{}, indices, figCells,
                    empty);
    writeResultsCsv(sweep, def->name, ShardSpec{}, indices, sweepCells,
                    empty);
    EXPECT_EQ(fig.str(), sweep.str());
}

/** A small sweep grid that actually runs: one benchmark, 2x2 axes,
 *  tiny budgets. */
std::vector<GridCell>
tinySweepCells()
{
    SimConfig base;
    base.skipInsts = 500;
    base.measureInsts = 2000;
    base.core.fetch.wrongPath = WrongPathMode::Stall;
    const std::vector<SweepAxis> axes = {
        parseSweepAxis("core.rename.regfile_size=48,64"),
        parseSweepAxis("core.scheme=conv,vp-wb")};
    return buildSweepGrid({"compress"}, base, axes);
}

TEST(SweepEquivalence, SweepRecordsMatchHandRolledGridEndToEnd)
{
    const std::vector<GridCell> sweepCells = tinySweepCells();

    // The same grid, hand-rolled the way the figure code does it.
    SimConfig config;
    config.skipInsts = 500;
    config.measureInsts = 2000;
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    std::vector<GridCell> handCells;
    for (std::uint16_t size : {48, 64}) {
        config.setPhysRegs(size);
        config.setScheme(RenameScheme::Conventional);
        handCells.push_back({"compress", config});
        config.setScheme(RenameScheme::VPAllocAtWriteback);
        handCells.push_back({"compress", config});
    }
    ASSERT_EQ(sweepCells.size(), handCells.size());

    std::vector<SimResults> sweepResults = runGrid(sweepCells, 1);
    std::vector<SimResults> handResults = runGrid(handCells, 2);

    std::vector<std::size_t> indices(sweepCells.size());
    std::iota(indices.begin(), indices.end(), 0);
    std::ostringstream a, b;
    writeResultsCsv(a, "tiny", ShardSpec{}, indices, sweepCells,
                    sweepResults);
    writeResultsCsv(b, "tiny", ShardSpec{}, indices, handCells,
                    handResults);
    // Byte-identical records: same cells, same metrics, same
    // provenance — and independent of --jobs (1 vs 2 above).
    EXPECT_EQ(a.str(), b.str());
}

TEST(SweepProvenance, VerifyAcceptsMatchingAndNamesTheDifferingKey)
{
    const std::vector<GridCell> cells = tinySweepCells();
    std::vector<std::size_t> indices(cells.size());
    std::iota(indices.begin(), indices.end(), 0);
    std::vector<SimResults> empty(cells.size());
    std::ostringstream os;
    writeResultsCsv(os, "tiny", ShardSpec{}, indices, cells, empty);

    std::istringstream is(os.str());
    ResultsFile file = readResultsCsv(is, "tiny");
    verifyCellProvenance(file, cells, "tiny");  // must not die

    // Tamper one row's miss-penalty provenance: the check must name
    // the dotted key.
    ResultsFile bad = file;
    const std::vector<std::string> &fixed = resultFixedColumns();
    auto it = std::find(fixed.begin(), fixed.end(),
                        "cfg.core.cache.miss_penalty");
    ASSERT_NE(it, fixed.end());
    bad.rows[2].values[static_cast<std::size_t>(it - fixed.begin())] =
        "123";
    EXPECT_EXIT(verifyCellProvenance(bad, cells, "tampered"),
                ::testing::ExitedWithCode(1),
                "cfg.core.cache.miss_penalty");
}

} // namespace
} // namespace vpr
