#include "core/core.hh"

#include "common/logging.hh"

namespace vpr
{

Core::Core(TraceStream &stream, const CoreConfig &config)
    : state(stream, config),
      fetchBuffer(state.fetch),
      fetchRedirect(state.fetch),
      commit(state),
      complete(state, completions, fetchRedirect, *this),
      issue(state, completions),
      rename(state, fetchBuffer),
      fetchStage(state),
      stageGraph{&commit, &complete, &issue, &rename, &fetchStage}
{
}

bool
Core::done() const
{
    return state.fetch.done() && state.rob.empty();
}

bool
Core::tick()
{
    state.beginCycle();

    // Back-to-front: a result produced by an earlier (older) stage this
    // cycle is visible to the later (younger) stages of the same cycle.
    for (Stage *stage : stageGraph)
        stage->tick();

    state.rob.sampleOccupancy();
    busyIntRegsSum +=
        static_cast<double>(state.renameMgr->busyPhysRegs(RegClass::Int));
    busyFpRegsSum += static_cast<double>(
        state.renameMgr->busyPhysRegs(RegClass::Float));

    if (state.cfg.invariantChecks && (state.curCycle & 0x3f) == 0)
        state.renameMgr->checkInvariants();

    if (state.curCycle - state.lastCommitCycle >
            state.cfg.deadlockThreshold &&
        !state.rob.empty()) {
        VPR_PANIC("deadlock: no commit for ", state.cfg.deadlockThreshold,
                  " cycles; head ", state.rob.head().toString(),
                  " freeInt=", state.renameMgr->freePhysRegs(RegClass::Int),
                  " freeFp=", state.renameMgr->freePhysRegs(RegClass::Float),
                  " iq=", state.iq.size(), " lsq=", state.lsq.size(),
                  " mshrs=", state.cache.mshrs().size(),
                  " portUsedNow=", state.cachePortSched.used(state.curCycle),
                  " storesWaiting=", completions.parkedStoreCount(),
                  " events=", completions.pendingEvents());
    }

    return !done();
}

void
Core::runUntilCommitted(std::uint64_t maxCommitted)
{
    while (commit.committedTotal() < maxCommitted && tick()) {
    }
}

void
Core::squashYoungerThan(InstSeqNum youngestKept)
{
    state.squashYoungerThan(youngestKept);
    for (Stage *stage : stageGraph)
        stage->squash(youngestKept);
}

void
Core::resetStats()
{
    baseCycles = state.curCycle;
    baseSquashed = state.nSquashed;
    baseCacheMisses = state.cache.misses() + state.cache.mergedMisses();
    baseCacheAccesses = state.cache.accesses();
    baseBusyIntRegsSum = busyIntRegsSum;
    baseBusyFpRegsSum = busyFpRegsSum;

    for (Stage *stage : stageGraph)
        stage->resetStats();

    state.renameMgr->pressure(RegClass::Int).reset(state.curCycle);
    state.renameMgr->pressure(RegClass::Float).reset(state.curCycle);
    state.rob.occupancyStat().reset();
}

CoreStatsSnapshot
Core::snapshot() const
{
    CoreStatsSnapshot s;
    s.cycles = state.curCycle - baseCycles;
    s.committed = commit.committedDelta();
    s.committedExecutions = commit.committedExecutionsDelta();
    s.issued = issue.issuedDelta();
    s.squashed = state.nSquashed - baseSquashed;
    s.wbRejections = complete.wbRejectionsDelta();
    s.branches = fetchStage.branchesDelta();
    s.mispredicts = fetchStage.mispredictsDelta();
    s.renameStallReg = rename.stallRegDelta();
    s.renameStallRob = rename.stallRobDelta();
    s.renameStallIq = rename.stallIqDelta();
    s.renameStallLsq = rename.stallLsqDelta();
    s.storeCommitStalls = commit.storeCommitStallsDelta();
    s.cacheMisses = state.cache.misses() + state.cache.mergedMisses() -
                    baseCacheMisses;
    s.cacheAccesses = state.cache.accesses() - baseCacheAccesses;
    if (s.cycles > 0) {
        s.avgBusyIntRegs = (busyIntRegsSum - baseBusyIntRegsSum) /
                           static_cast<double>(s.cycles);
        s.avgBusyFpRegs = (busyFpRegsSum - baseBusyFpRegsSum) /
                          static_cast<double>(s.cycles);
    }
    return s;
}

} // namespace vpr
