#include "common/io/zio.hh"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "common/state.hh"

#ifdef VPR_HAVE_ZLIB
#include <zlib.h>
#endif

namespace vpr
{

namespace
{

constexpr char kVprzMagic[4] = {'V', 'P', 'R', 'Z'};
constexpr std::uint8_t kVprzVersion = 1;
constexpr std::uint8_t kCodecStore = 0;
constexpr std::uint8_t kCodecZlib = 1;

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t
readU64(const std::string &in, std::size_t &pos)
{
    if (in.size() - pos < 8)
        throw CkptError("truncated VPRZ container");
    std::uint64_t w = 0;
    for (int i = 0; i < 8; ++i)
        w |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[pos + i]))
             << (8 * i);
    pos += 8;
    return w;
}

#ifdef VPR_HAVE_ZLIB

/** Deflate @p in through a z_stream in bounded chunks. */
std::string
deflateBytes(const std::string &in)
{
    z_stream zs;
    std::memset(&zs, 0, sizeof(zs));
    if (deflateInit(&zs, Z_DEFAULT_COMPRESSION) != Z_OK)
        throw CkptError("zlib deflateInit failed");
    std::string out;
    char chunk[64 * 1024];
    zs.next_in =
        reinterpret_cast<Bytef *>(const_cast<char *>(in.data()));
    zs.avail_in = static_cast<uInt>(in.size());
    int rc;
    do {
        zs.next_out = reinterpret_cast<Bytef *>(chunk);
        zs.avail_out = sizeof(chunk);
        rc = deflate(&zs, Z_FINISH);
        out.append(chunk, sizeof(chunk) - zs.avail_out);
    } while (rc == Z_OK);
    deflateEnd(&zs);
    if (rc != Z_STREAM_END)
        throw CkptError("zlib deflate failed");
    return out;
}

/** Inflate @p in, which must expand to exactly @p rawSize bytes. */
std::string
inflateBytes(const std::string &in, std::uint64_t rawSize)
{
    z_stream zs;
    std::memset(&zs, 0, sizeof(zs));
    if (inflateInit(&zs) != Z_OK)
        throw CkptError("zlib inflateInit failed");
    std::string out;
    out.reserve(static_cast<std::size_t>(rawSize));
    char chunk[64 * 1024];
    zs.next_in =
        reinterpret_cast<Bytef *>(const_cast<char *>(in.data()));
    zs.avail_in = static_cast<uInt>(in.size());
    int rc;
    do {
        zs.next_out = reinterpret_cast<Bytef *>(chunk);
        zs.avail_out = sizeof(chunk);
        rc = inflate(&zs, Z_NO_FLUSH);
        if (rc != Z_OK && rc != Z_STREAM_END) {
            inflateEnd(&zs);
            throw CkptError("zlib inflate failed (corrupted stream)");
        }
        out.append(chunk, sizeof(chunk) - zs.avail_out);
        if (out.size() > rawSize) {
            inflateEnd(&zs);
            throw CkptError("VPRZ payload inflates past its declared "
                            "size");
        }
    } while (rc != Z_STREAM_END);
    inflateEnd(&zs);
    if (out.size() != rawSize)
        throw CkptError("VPRZ payload shorter than declared");
    return out;
}

#endif // VPR_HAVE_ZLIB

} // namespace

FileFormat
guessFormat(const std::string &data)
{
    if (data.size() >= sizeof(kVprzMagic) &&
        std::memcmp(data.data(), kVprzMagic, sizeof(kVprzMagic)) == 0)
        return FileFormat::Vprz;
    if (data.size() >= sizeof(kCkptMagic) &&
        std::memcmp(data.data(), kCkptMagic, sizeof(kCkptMagic)) == 0)
        return FileFormat::Checkpoint;
    return FileFormat::Plain;
}

bool
zlibAvailable()
{
#ifdef VPR_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

std::string
vprzPack(const std::string &payload, const std::string &kind,
         bool compress)
{
    std::uint8_t codec = kCodecStore;
    std::string stored;
#ifdef VPR_HAVE_ZLIB
    if (compress) {
        stored = deflateBytes(payload);
        codec = kCodecZlib;
    }
#else
    (void)compress;
#endif
    if (codec == kCodecStore)
        stored = payload;

    std::string out;
    out.reserve(4 + 2 + 2 + kind.size() + 8 + 8 + stored.size() + 8);
    out.append(kVprzMagic, sizeof(kVprzMagic));
    out.push_back(static_cast<char>(kVprzVersion));
    out.push_back(static_cast<char>(codec));
    out.push_back(static_cast<char>(kind.size() & 0xff));
    out.push_back(static_cast<char>((kind.size() >> 8) & 0xff));
    out += kind;
    appendU64(out, payload.size());
    appendU64(out, stored.size());
    out += stored;
    appendU64(out, fnv1a(payload));
    return out;
}

std::string
vprzUnpack(const std::string &raw, const std::string &expectKind)
{
    if (raw.size() < 8 ||
        std::memcmp(raw.data(), kVprzMagic, sizeof(kVprzMagic)) != 0)
        throw CkptError("not a VPRZ container (wrong magic)");
    std::size_t pos = sizeof(kVprzMagic);
    std::uint8_t version = static_cast<unsigned char>(raw[pos++]);
    if (version != kVprzVersion)
        throw CkptError("VPRZ container version skew (file v" +
                        std::to_string(version) + ", expected v" +
                        std::to_string(kVprzVersion) + ")");
    std::uint8_t codec = static_cast<unsigned char>(raw[pos++]);
    std::size_t kindLen =
        static_cast<unsigned char>(raw[pos]) |
        (static_cast<std::size_t>(static_cast<unsigned char>(raw[pos + 1]))
         << 8);
    pos += 2;
    if (raw.size() - pos < kindLen)
        throw CkptError("truncated VPRZ container");
    std::string kind = raw.substr(pos, kindLen);
    pos += kindLen;
    if (!expectKind.empty() && kind != expectKind)
        throw CkptError("VPRZ payload kind mismatch (file holds '" +
                        kind + "', expected '" + expectKind + "')");
    std::uint64_t rawSize = readU64(raw, pos);
    std::uint64_t storedSize = readU64(raw, pos);
    if (raw.size() - pos < storedSize + 8)
        throw CkptError("truncated VPRZ container");
    std::string stored = raw.substr(pos, storedSize);
    pos += storedSize;
    std::uint64_t checksum = readU64(raw, pos);
    if (pos != raw.size())
        throw CkptError("trailing garbage after VPRZ container");

    std::string payload;
    if (codec == kCodecStore) {
        if (stored.size() != rawSize)
            throw CkptError("VPRZ stored size disagrees with raw size");
        payload = std::move(stored);
    } else if (codec == kCodecZlib) {
#ifdef VPR_HAVE_ZLIB
        payload = inflateBytes(stored, rawSize);
#else
        throw CkptError("VPRZ payload is zlib-compressed but this "
                        "build has no zlib");
#endif
    } else {
        throw CkptError("unknown VPRZ codec " + std::to_string(codec));
    }
    if (fnv1a(payload) != checksum)
        throw CkptError("VPRZ payload checksum mismatch (corrupted "
                        "file)");
    return payload;
}

bool
readFileBytes(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    out.assign(std::istreambuf_iterator<char>(is),
               std::istreambuf_iterator<char>());
    return is.good() || is.eof();
}

bool
writeFileAtomic(const std::string &path, const std::string &data)
{
    // Unique per (process, thread-order) so concurrent writers — other
    // grid-cell threads or whole other processes sharing a checkpoint
    // directory — never collide on the temp name; rename() then makes
    // the publish atomic (last writer wins with identical content).
    static std::atomic<unsigned> tmpCounter{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(tmpCounter.fetch_add(1));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return false;
        os.write(data.data(),
                 static_cast<std::streamsize>(data.size()));
        if (!os) {
            os.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace vpr
