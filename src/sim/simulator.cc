#include "sim/simulator.hh"

#include <iomanip>

#include "common/logging.hh"
#include "common/random.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{

namespace
{

/** Component salt for deriveSeed: the wrong-path synthesis RNG. */
constexpr std::uint64_t kWrongPathSalt = 0x77f00dull;

/** Thread the run's master seed into every stochastic component the
 *  config controls; with seed 0 the per-component defaults apply. */
void
threadSeed(SimConfig &cfg)
{
    if (cfg.seed != 0)
        cfg.core.fetch.wrongPathSeed =
            deriveSeed(cfg.seed, kWrongPathSalt);
}

} // namespace

Simulator::Simulator(TraceStream &stream, const SimConfig &config)
    : cfg(config)
{
    cfg.validate();
    threadSeed(cfg);
    theCore = std::make_unique<Core>(stream, cfg.core);
}

Simulator::Simulator(const std::string &benchmark, const SimConfig &config)
    : cfg(config)
{
    cfg.validate();
    threadSeed(cfg);
    ownedStream = makeBenchmarkStream(benchmark, cfg.seed);
    theCore = std::make_unique<Core>(*ownedStream, cfg.core);
}

SimResults
Simulator::run()
{
    Core &c = *theCore;
    if (cfg.skipInsts > 0)
        c.runUntilCommitted(cfg.skipInsts);
    c.resetStats();
    std::uint64_t target = c.committedInsts() + cfg.measureInsts;
    c.runUntilCommitted(target);

    SimResults r;
    r.stats = c.snapshot();
    r.bhtAccuracy = c.fetchUnit().predictor().accuracy();
    r.cacheMissRate = c.cache().missRate();
    r.meanHoldCyclesInt =
        c.renamer().pressure(RegClass::Int).meanHoldCycles();
    r.meanHoldCyclesFp =
        c.renamer().pressure(RegClass::Float).meanHoldCycles();
    r.lsqForwards = c.lsq().forwards();
    return r;
}

void
Simulator::printReport(std::ostream &os, const SimResults &r) const
{
    const auto &s = r.stats;
    os << std::fixed << std::setprecision(3);
    os << "scheme            " << renameSchemeName(cfg.core.scheme)
       << "\n";
    os << "physRegs/file     " << cfg.core.rename.numPhysRegs << "\n";
    os << "NRR (int/fp)      " << cfg.core.rename.nrrInt << "/"
       << cfg.core.rename.nrrFp << "\n";
    os << "cycles            " << s.cycles << "\n";
    os << "committed         " << s.committed << "\n";
    os << "IPC               " << s.ipc() << "\n";
    os << "exec/commit       " << s.executionsPerCommit() << "\n";
    os << "wb rejections     " << s.wbRejections << "\n";
    os << "branches          " << s.branches << " (mispred "
       << s.mispredicts << ")\n";
    os << "bht accuracy      " << r.bhtAccuracy << "\n";
    os << "cache miss rate   " << r.cacheMissRate << "\n";
    os << "rename stalls     reg=" << s.renameStallReg
       << " rob=" << s.renameStallRob << " iq=" << s.renameStallIq
       << " lsq=" << s.renameStallLsq << "\n";
    os << "avg busy regs     int=" << s.avgBusyIntRegs
       << " fp=" << s.avgBusyFpRegs << "\n";
    os << "mean hold cycles  int=" << r.meanHoldCyclesInt
       << " fp=" << r.meanHoldCyclesFp << "\n";
}

} // namespace vpr
