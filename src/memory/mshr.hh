/**
 * @file
 * Miss Status Holding Registers for the lockup-free cache.
 *
 * Kroft-style: each MSHR tracks one outstanding line fill. Accesses to a
 * line that is already in flight merge into the existing entry instead of
 * issuing a second fill. The paper allows up to 8 pending misses to
 * different cache lines.
 */

#ifndef VPR_MEMORY_MSHR_HH
#define VPR_MEMORY_MSHR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/state.hh"
#include "common/types.hh"

namespace vpr
{

/** One in-flight line fill. */
struct Mshr
{
    Addr lineAddr = 0;      ///< line-aligned address being fetched
    Cycle fillCycle = 0;    ///< cycle the line arrives in the cache
    bool needsWriteback = false; ///< victim is dirty, write back at fill
    Addr victimLine = 0;    ///< victim line address (for stats/debug)
    unsigned targets = 0;   ///< accesses merged into this fill
    bool dirty = false;     ///< a merged store will dirty the line
};

/** Fixed-size MSHR file. */
class MshrFile
{
  public:
    explicit MshrFile(std::size_t entries = 8);

    bool full() const { return live.size() >= capacity; }
    std::size_t size() const { return live.size(); }
    std::size_t maxEntries() const { return capacity; }

    /** Find the in-flight entry covering @p lineAddr, if any. */
    Mshr *find(Addr lineAddr);

    /** Allocate an entry; caller must check !full() first. */
    Mshr &allocate(Addr lineAddr, Cycle fillCycle);

    /**
     * Remove entries whose fill completed at or before @p now and hand
     * them to @p sink (used by the cache to install tags). The earliest
     * pending fill cycle is cached so the common every-cycle call with
     * nothing due returns without touching the entries at all.
     */
    template <typename Sink>
    void
    retireUpTo(Cycle now, Sink &&sink)
    {
        if (earliestFill > now)
            return;
        std::size_t keep = 0;
        Cycle earliest = kNoCycle;
        for (std::size_t i = 0; i < live.size(); ++i) {
            if (live[i].fillCycle <= now) {
                sink(live[i]);
            } else {
                if (live[i].fillCycle < earliest)
                    earliest = live[i].fillCycle;
                live[keep++] = live[i];
            }
        }
        live.resize(keep);
        earliestFill = earliest;
    }

    void
    clear()
    {
        live.clear();
        earliestFill = kNoCycle;
    }

    /** All live entries (tests/inspection). */
    const std::vector<Mshr> &entries() const { return live; }

    /** Serialize/restore the in-flight fills. Fills are *not* pipeline
     *  events, so the MSHR file can legitimately be non-empty at a
     *  drained checkpoint — the entries travel as plain records. */
    void
    visitState(StateVisitor &v)
    {
        v.section("mshr");
        std::uint64_t n = live.size();
        v.value(n);
        if (v.loading()) {
            if (n > capacity)
                throw CkptError("MSHR count exceeds capacity");
            live.resize(static_cast<std::size_t>(n));
        }
        for (Mshr &m : live) {
            v.value(m.lineAddr);
            v.value(m.fillCycle);
            v.value(m.needsWriteback);
            v.value(m.victimLine);
            v.value(m.targets);
            v.value(m.dirty);
        }
        v.value(earliestFill);
    }

  private:
    std::size_t capacity;
    std::vector<Mshr> live;
    /** Earliest pending fillCycle (kNoCycle when empty); valid because
     *  an entry's fill cycle never changes after allocation. */
    Cycle earliestFill = kNoCycle;
};

} // namespace vpr

#endif // VPR_MEMORY_MSHR_HH
