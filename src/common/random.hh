/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * The simulator must be bit-for-bit reproducible across platforms and
 * standard-library versions, so we ship our own xorshift64* generator
 * instead of relying on std::mt19937 distributions (whose results are
 * implementation-defined for some adaptors).
 */

#ifndef VPR_COMMON_RANDOM_HH
#define VPR_COMMON_RANDOM_HH

#include <cstdint>

namespace vpr
{

/**
 * xorshift64* PRNG. Small, fast, and good enough for workload synthesis;
 * not cryptographic.
 */
class Random
{
  public:
    /** Seed must be non-zero; 0 is remapped to a fixed constant. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next64() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability @p permille / 1000. */
    bool
    chancePermille(unsigned permille)
    {
        return below(1000) < permille;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Reset the internal state. */
    void reseed(std::uint64_t seed) { state = seed ? seed : 1; }

    /** Raw generator state, for checkpointing. xorshift64* state is
     *  never 0 once seeded, so the round trip is exact. @{ */
    std::uint64_t rawState() const { return state; }
    void setRawState(std::uint64_t s) { state = s ? s : 1; }
    /** @} */

  private:
    std::uint64_t state;
};

/**
 * Derive an independent, well-mixed seed for one named consumer of a
 * run's master seed (SimConfig::seed). Each stochastic component of a
 * simulation (kernel stream, wrong-path synthesis, ...) seeds its own
 * Random from deriveSeed(masterSeed, <component salt>), so components
 * never share a generator and parallel grid cells are reproducible
 * run-to-run. splitmix64 finalizer; never returns 0.
 */
std::uint64_t deriveSeed(std::uint64_t masterSeed, std::uint64_t salt);

} // namespace vpr

#endif // VPR_COMMON_RANDOM_HH
