#include "trace/builder.hh"

#include "common/logging.hh"

namespace vpr
{

TraceBuilder &
TraceBuilder::append(StaticInst si)
{
    si.pc = nextPc;
    nextPc += 4;
    recs.push_back(si);
    return *this;
}

TraceBuilder &
TraceBuilder::alu(RegId d, RegId s1, RegId s2)
{
    return append(StaticInst::alu(d, s1, s2));
}

TraceBuilder &
TraceBuilder::mult(RegId d, RegId s1, RegId s2)
{
    return append(StaticInst::mult(d, s1, s2));
}

TraceBuilder &
TraceBuilder::div(RegId d, RegId s1, RegId s2)
{
    return append(StaticInst::div(d, s1, s2));
}

TraceBuilder &
TraceBuilder::fpAdd(RegId d, RegId s1, RegId s2)
{
    return append(StaticInst::fpAdd(d, s1, s2));
}

TraceBuilder &
TraceBuilder::fpMul(RegId d, RegId s1, RegId s2)
{
    return append(StaticInst::fpMul(d, s1, s2));
}

TraceBuilder &
TraceBuilder::fpDiv(RegId d, RegId s1, RegId s2)
{
    return append(StaticInst::fpDiv(d, s1, s2));
}

TraceBuilder &
TraceBuilder::fpSqrt(RegId d, RegId s1)
{
    return append(StaticInst::fpSqrt(d, s1));
}

TraceBuilder &
TraceBuilder::load(RegId d, RegId base, Addr addr)
{
    return append(StaticInst::load(d, base, addr));
}

TraceBuilder &
TraceBuilder::store(RegId data, RegId base, Addr addr)
{
    return append(StaticInst::store(data, base, addr));
}

TraceBuilder &
TraceBuilder::branch(RegId s1, bool taken, Addr target)
{
    return append(StaticInst::branch(s1, taken, target));
}

TraceBuilder &
TraceBuilder::nop()
{
    return append(StaticInst::nop());
}

TraceBuilder &
TraceBuilder::mark()
{
    markPos = recs.size();
    return *this;
}

TraceBuilder &
TraceBuilder::repeat(unsigned n)
{
    VPR_ASSERT(markPos <= recs.size(), "bad mark");
    std::vector<TraceRecord> body(recs.begin() + markPos, recs.end());
    for (unsigned i = 1; i < n; ++i) {
        for (auto si : body) {
            // Keep the original PCs so loop iterations hit the same BHT
            // entries, as a real re-executed loop body would.
            recs.push_back(si);
        }
    }
    return *this;
}

std::unique_ptr<VectorTraceStream>
TraceBuilder::stream(bool loop) const
{
    return std::make_unique<VectorTraceStream>(recs, loop);
}

} // namespace vpr
