#include "trace/loop_trace.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace vpr
{

InstTemplate
InstTemplate::compute(OpClass op, RegId d, RegId s0, RegId s1)
{
    InstTemplate t;
    t.op = op;
    t.dest = d;
    t.src0 = s0;
    t.src1 = s1;
    return t;
}

InstTemplate
InstTemplate::loadFrom(int stream, RegId d, RegId base)
{
    InstTemplate t;
    t.op = OpClass::Load;
    t.dest = d;
    t.src0 = base;
    t.memStream = stream;
    return t;
}

InstTemplate
InstTemplate::storeTo(int stream, RegId data, RegId base)
{
    InstTemplate t;
    t.op = OpClass::Store;
    t.src0 = data;
    t.src1 = base;
    t.memStream = stream;
    return t;
}

void
KernelDesc::validate() const
{
    VPR_ASSERT(!blocks.empty(), "kernel '", name, "' has no blocks");
    for (const auto &b : blocks) {
        for (const auto &t : b.insts) {
            if (isMemOp(t.op)) {
                VPR_ASSERT(t.memStream >= 0 &&
                           static_cast<std::size_t>(t.memStream) <
                               streams.size(),
                           "kernel '", name, "': bad memory stream index");
            }
        }
        if (b.branch.kind != BranchDesc::Kind::None) {
            VPR_ASSERT(static_cast<std::size_t>(b.branch.takenTarget) <
                           blocks.size(),
                       "kernel '", name, "': bad taken target");
            VPR_ASSERT(static_cast<std::size_t>(b.branch.fallThrough) <
                           blocks.size(),
                       "kernel '", name, "': bad fall-through");
            if (b.branch.kind == BranchDesc::Kind::Loop)
                VPR_ASSERT(b.branch.tripCount >= 1, "kernel '", name,
                           "': zero trip count");
        }
    }
    for (const auto &s : streams) {
        VPR_ASSERT(s.region >= s.elemSize, "kernel '", name,
                   "': region smaller than element");
        VPR_ASSERT(s.elemSize > 0, "kernel '", name, "': zero elem size");
    }
}

LoopTraceStream::LoopTraceStream(KernelDesc d) : desc(std::move(d)),
    rng(desc.seed)
{
    desc.validate();
    streamPos.assign(desc.streams.size(), 0);
    loopCount.assign(desc.blocks.size(), 0);

    // Lay blocks out back to back in the simulated text segment so that
    // distinct static branches map to distinct BHT entries.
    blockPc.resize(desc.blocks.size());
    Addr pc = desc.pcBase;
    for (std::size_t i = 0; i < desc.blocks.size(); ++i) {
        blockPc[i] = pc;
        std::size_t n = desc.blocks[i].insts.size();
        if (desc.blocks[i].branch.kind != BranchDesc::Kind::None)
            ++n;
        pc += n * 4;
    }
}

void
LoopTraceStream::reset()
{
    rng.reseed(desc.seed);
    curBlock = 0;
    curInst = 0;
    streamPos.assign(desc.streams.size(), 0);
    loopCount.assign(desc.blocks.size(), 0);
}

Addr
LoopTraceStream::pcOf(std::size_t blk, std::size_t idx) const
{
    return blockPc[blk] + idx * 4;
}

Addr
LoopTraceStream::nextAddr(int streamIdx)
{
    const MemStreamDesc &s = desc.streams[streamIdx];
    std::uint64_t pos = streamPos[streamIdx]++;
    std::uint64_t elems = s.region / s.elemSize;
    switch (s.kind) {
      case MemStreamDesc::Kind::Stride: {
        std::int64_t off =
            static_cast<std::int64_t>(pos) * s.stride;
        std::uint64_t wrapped =
            static_cast<std::uint64_t>(off) % s.region;
        return s.base + roundDown(wrapped, s.elemSize);
      }
      case MemStreamDesc::Kind::Random:
      case MemStreamDesc::Kind::PointerChase:
        return s.base + rng.below(elems) * s.elemSize;
      default:
        VPR_PANIC("bad memory stream kind");
    }
}

std::optional<TraceRecord>
LoopTraceStream::next()
{
    const BlockDesc &blk = desc.blocks[curBlock];

    if (curInst < blk.insts.size()) {
        const InstTemplate &t = blk.insts[curInst];
        TraceRecord rec;
        rec.pc = pcOf(curBlock, curInst);
        rec.op = t.op;
        rec.dest = t.dest;
        rec.src[0] = t.src0;
        rec.src[1] = t.src1;
        if (isMemOp(t.op)) {
            rec.effAddr = nextAddr(t.memStream);
            rec.memSize = desc.streams[t.memStream].elemSize;
        }
        ++curInst;
        return rec;
    }

    // End of block: emit the branch (if any) and move on.
    std::size_t blkIdx = curBlock;
    curInst = 0;

    if (blk.branch.kind == BranchDesc::Kind::None) {
        curBlock = (curBlock + 1) % desc.blocks.size();
        return next();
    }

    bool taken = false;
    if (blk.branch.kind == BranchDesc::Kind::Loop) {
        ++loopCount[blkIdx];
        if (loopCount[blkIdx] < blk.branch.tripCount) {
            taken = true;
        } else {
            loopCount[blkIdx] = 0;
            taken = false;
        }
    } else {
        taken = rng.chancePermille(blk.branch.takenPermille);
    }

    std::size_t nextBlock = taken
        ? static_cast<std::size_t>(blk.branch.takenTarget)
        : static_cast<std::size_t>(blk.branch.fallThrough);

    TraceRecord rec = StaticInst::branch(
        blk.branch.src, taken, blockPc[nextBlock]);
    rec.pc = pcOf(blkIdx, blk.insts.size());
    curBlock = nextBlock;
    return rec;
}

} // namespace vpr
