#include "alloc_count.hh"

#include <cstdlib>
#include <new>

namespace
{

thread_local int g_depth = 0;
thread_local std::uint64_t g_count = 0;

inline void
note() noexcept
{
    if (g_depth > 0)
        ++g_count;
}

void *
countedAlloc(std::size_t n)
{
    note();
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
countedAllocAligned(std::size_t n, std::size_t align)
{
    note();
    if (align < sizeof(void *))
        align = sizeof(void *);
    void *p = nullptr;
    if (posix_memalign(&p, align, n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    note();
    return std::malloc(n ? n : 1);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    note();
    return std::malloc(n ? n : 1);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    return countedAllocAligned(n, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    return countedAllocAligned(n, static_cast<std::size_t>(align));
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace vpr
{
namespace testsupport
{

std::uint64_t recordedAllocs() { return g_count; }

int allocScopeDepth() { return g_depth; }

AllocGuard::AllocGuard() : start(g_count) { ++g_depth; }

AllocGuard::~AllocGuard() { --g_depth; }

std::uint64_t
AllocGuard::count() const
{
    return g_count - start;
}

} // namespace testsupport
} // namespace vpr
