/**
 * @file
 * The --sampling-preset table must stay a bijection with the figure
 * registry: every registered figure has exactly one tuned preset (a new
 * figure without one fails here, not at a user's command line), every
 * preset names a real figure, and the tuned values are well-formed
 * sampling protocols.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "bench_common.hh"
#include "figures.hh"

namespace vpr::bench
{
namespace
{

TEST(SamplingPresets, CoverEveryRegisteredFigureExactlyOnce)
{
    std::set<std::string> presetNames;
    for (const SamplingPreset &preset : samplingPresets())
        EXPECT_TRUE(presetNames.insert(preset.figure).second)
            << "duplicate preset for '" << preset.figure << "'";

    for (const FigureDef &figure : allFigures())
        EXPECT_EQ(presetNames.count(figure.name), 1u)
            << "registered figure '" << figure.name
            << "' has no --sampling-preset entry";

    for (const SamplingPreset &preset : samplingPresets())
        EXPECT_NE(findFigure(preset.figure), nullptr)
            << "preset '" << preset.figure
            << "' names an unregistered figure";

    EXPECT_EQ(presetNames.size(), allFigures().size());
}

TEST(SamplingPresets, ValuesFormValidProtocols)
{
    for (const SamplingPreset &preset : samplingPresets()) {
        // A period must fit its warm-up + detailed phases, and the
        // default 120 k bench measurement budget must yield at least
        // three intervals for a meaningful variance estimate.
        EXPECT_GT(preset.detailedInsts, 0u) << preset.figure;
        EXPECT_GE(preset.periodInsts,
                  preset.warmupInsts + preset.detailedInsts)
            << preset.figure;
        EXPECT_GE(120000u / preset.periodInsts, 3u) << preset.figure;
    }
}

TEST(SamplingPresets, LookupByName)
{
    const SamplingPreset *fig7 = findSamplingPreset("fig7_regfile_size");
    ASSERT_NE(fig7, nullptr);
    EXPECT_EQ(fig7->periodInsts, 20000u);
    EXPECT_EQ(findSamplingPreset("no_such_figure"), nullptr);
}

} // namespace
} // namespace vpr::bench
