/**
 * @file
 * Abstract trace stream plus the simple vector-backed implementation.
 */

#ifndef VPR_TRACE_STREAM_HH
#define VPR_TRACE_STREAM_HH

#include <optional>
#include <vector>

#include "trace/record.hh"

namespace vpr
{

/**
 * A source of dynamic instructions. Streams must be deterministic:
 * reset() followed by repeated next() always yields the same sequence.
 */
class TraceStream
{
  public:
    virtual ~TraceStream() = default;

    /** @return the next record, or nullopt at end of trace. */
    virtual std::optional<TraceRecord> next() = 0;

    /** Rewind to the beginning of the trace. */
    virtual void reset() = 0;
};

/**
 * A trace held in memory. Optionally replays the sequence forever, which
 * turns a single loop body into an unbounded instruction stream.
 */
class VectorTraceStream : public TraceStream
{
  public:
    explicit VectorTraceStream(std::vector<TraceRecord> records,
                               bool loop = false)
        : recs(std::move(records)), looping(loop), pos(0)
    {}

    std::optional<TraceRecord>
    next() override
    {
        if (pos >= recs.size()) {
            if (!looping || recs.empty())
                return std::nullopt;
            pos = 0;
        }
        return recs[pos++];
    }

    void reset() override { pos = 0; }

    std::size_t size() const { return recs.size(); }

  private:
    std::vector<TraceRecord> recs;
    bool looping;
    std::size_t pos;
};

} // namespace vpr

#endif // VPR_TRACE_STREAM_HH
