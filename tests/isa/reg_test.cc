/** @file Unit tests for register identifiers. */

#include <gtest/gtest.h>

#include "isa/reg.hh"

namespace vpr
{
namespace
{

TEST(RegId, DefaultIsInvalid)
{
    RegId r;
    EXPECT_FALSE(r.valid());
    EXPECT_EQ(r, RegId::none());
    EXPECT_EQ(r.str(), "-");
}

TEST(RegId, NamedConstructors)
{
    RegId i = RegId::intReg(7);
    RegId f = RegId::fpReg(12);
    EXPECT_TRUE(i.valid());
    EXPECT_EQ(i.regClass(), RegClass::Int);
    EXPECT_EQ(i.index(), 7);
    EXPECT_EQ(f.regClass(), RegClass::Float);
    EXPECT_EQ(f.index(), 12);
}

TEST(RegId, Names)
{
    EXPECT_EQ(RegId::intReg(3).str(), "r3");
    EXPECT_EQ(RegId::fpReg(31).str(), "f31");
}

TEST(RegId, EqualityRespectsClassAndIndex)
{
    EXPECT_EQ(RegId::intReg(4), RegId::intReg(4));
    EXPECT_NE(RegId::intReg(4), RegId::intReg(5));
    EXPECT_NE(RegId::intReg(4), RegId::fpReg(4));
    // Two invalid ids compare equal regardless of class.
    EXPECT_EQ(RegId::none(), RegId());
}

TEST(RegId, ClassIdx)
{
    EXPECT_EQ(classIdx(RegClass::Int), 0u);
    EXPECT_EQ(classIdx(RegClass::Float), 1u);
    EXPECT_EQ(kNumRegClasses, 2u);
}

TEST(RegId, ClassNames)
{
    EXPECT_STREQ(regClassName(RegClass::Int), "int");
    EXPECT_STREQ(regClassName(RegClass::Float), "fp");
}

TEST(RegId, LogicalRegisterCountMatchesPaper)
{
    // The paper assumes 32 logical registers per class (Alpha/MIPS ISA).
    EXPECT_EQ(kNumLogicalRegs, 32);
}

TEST(RegIdDeath, IndexOfInvalidPanics)
{
    RegId r = RegId::none();
    EXPECT_DEATH(r.index(), "invalid RegId");
}

} // namespace
} // namespace vpr
