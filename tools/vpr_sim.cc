/**
 * @file
 * vpr_sim — command-line driver for single simulation runs.
 *
 * Usage:
 *   vpr_sim [options] <benchmark | trace.vprt | all>
 *
 * The target "all" runs every built-in benchmark through the parallel
 * experiment engine and prints an IPC summary table (use --jobs).
 *
 * Options:
 *   --scheme=conv|vp-wb|vp-issue|conv-er   renaming scheme
 *   --regs=N          physical registers per file        (default 64)
 *   --nrr=N           reserved registers (VP schemes)    (default max)
 *   --rob=N           reorder-buffer / window size       (default 128)
 *   --skip=N          committed instructions to warm up  (default 20000)
 *   --insts=N         committed instructions to measure  (default 200000)
 *   --miss=N          L1 miss penalty in cycles          (default 50)
 *   --mshrs=N         outstanding misses                 (default 8)
 *   --seed=N          workload seed (0 = kernel default)
 *   --jobs=N          worker threads for "all" (0 = hw threads)
 *   --wrongpath       synthesize wrong-path fetch (default: stall)
 *   --wrongpath-mem   wrong-path synthesis includes loads/stores that
 *                     probe the cache (implies --wrongpath)
 *   --out=F           write one machine-readable record per run to F
 *                     (CSV, or JSON when F ends in .json)
 *   --dump-trace=F,N  write the first N workload records to file F
 *   --list            list built-in benchmarks and exit
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/experiment.hh"
#include "sim/results_io.hh"
#include "trace/kernels/kernels.hh"
#include "trace/trace_file.hh"

using namespace vpr;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [options] <benchmark | trace.vprt>\n"
                 "run '" << argv0 << " --list' for benchmarks; see the "
                 "file header for all options\n";
    std::exit(1);
}

bool
matchArg(const char *arg, const char *key, const char **value)
{
    std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        *value = arg + n + 1;
        return true;
    }
    return false;
}

RenameScheme
parseScheme(const std::string &s)
{
    if (s == "conv")
        return RenameScheme::Conventional;
    if (s == "vp-wb")
        return RenameScheme::VPAllocAtWriteback;
    if (s == "vp-issue")
        return RenameScheme::VPAllocAtIssue;
    if (s == "conv-er")
        return RenameScheme::ConventionalEarlyRelease;
    std::cerr << "unknown scheme '" << s
              << "' (conv|vp-wb|vp-issue|conv-er)\n";
    std::exit(1);
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig config = paperConfig();
    config.skipInsts = 20000;
    config.measureInsts = 200000;
    config.core.fetch.wrongPath = WrongPathMode::Stall;

    std::string target;
    int nrr = -1;
    std::string dumpSpec;
    std::string outPath;

    for (int i = 1; i < argc; ++i) {
        const char *v = nullptr;
        if (std::strcmp(argv[i], "--list") == 0) {
            for (const auto &info : benchmarkTable())
                std::cout << info.name << (info.isFp ? "  [fp] " : " [int] ")
                          << info.sketch << "\n";
            return 0;
        } else if (std::strcmp(argv[i], "--wrongpath") == 0) {
            config.core.fetch.wrongPath = WrongPathMode::Synthesize;
        } else if (std::strcmp(argv[i], "--wrongpath-mem") == 0) {
            config.core.fetch.wrongPath = WrongPathMode::Synthesize;
            config.core.fetch.wrongPathMem = true;
        } else if (matchArg(argv[i], "--out", &v)) {
            outPath = v;
        } else if (matchArg(argv[i], "--scheme", &v)) {
            config.setScheme(parseScheme(v));
        } else if (matchArg(argv[i], "--regs", &v)) {
            config.setPhysRegs(
                static_cast<std::uint16_t>(std::atoi(v)), nrr);
        } else if (matchArg(argv[i], "--nrr", &v)) {
            nrr = std::atoi(v);
            config.setNrr(static_cast<std::uint16_t>(nrr));
        } else if (matchArg(argv[i], "--rob", &v)) {
            std::size_t n = static_cast<std::size_t>(std::atoll(v));
            config.core.robSize = n;
            config.core.iqSize = n;
            config.core.lsqSize = n;
            config.setPhysRegs(config.core.rename.numPhysRegs, nrr);
        } else if (matchArg(argv[i], "--skip", &v)) {
            config.skipInsts = std::strtoull(v, nullptr, 10);
        } else if (matchArg(argv[i], "--insts", &v)) {
            config.measureInsts = std::strtoull(v, nullptr, 10);
        } else if (matchArg(argv[i], "--miss", &v)) {
            config.core.cache.missPenalty =
                static_cast<unsigned>(std::atoi(v));
        } else if (matchArg(argv[i], "--mshrs", &v)) {
            config.core.cache.numMshrs =
                static_cast<unsigned>(std::atoi(v));
        } else if (matchArg(argv[i], "--seed", &v)) {
            config.seed = std::strtoull(v, nullptr, 10);
        } else if (matchArg(argv[i], "--jobs", &v)) {
            config.jobs = parseJobs(v);
        } else if (matchArg(argv[i], "--dump-trace", &v)) {
            dumpSpec = v;
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
        } else {
            target = argv[i];
        }
    }
    if (target.empty())
        usage(argv[0]);

    if (!dumpSpec.empty()) {
        auto comma = dumpSpec.find(',');
        std::string file = dumpSpec.substr(0, comma);
        std::size_t n = comma == std::string::npos
            ? 100000
            : std::strtoull(dumpSpec.c_str() + comma + 1, nullptr, 10);
        auto stream = makeBenchmarkStream(target, config.seed);
        std::size_t written = writeTraceFile(file, *stream, n);
        std::cout << "wrote " << written << " records to " << file
                  << "\n";
        return 0;
    }

    // --out: one record per run. Every index of the run's grid is
    // exported (vpr_sim never shards; the bench binaries do).
    auto exportRecords = [&outPath](const std::string &figure,
                                    const std::vector<GridCell> &cells,
                                    const std::vector<SimResults> &results) {
        if (!outPath.empty())
            exportAllCells(outPath, figure, cells, results);
    };

    if (target == "all") {
        // Sweep every benchmark on the parallel engine and summarize.
        std::vector<GridCell> cells;
        for (const auto &name : benchmarkNames())
            cells.push_back({name, config});
        std::vector<SimResults> results = runGrid(cells, config.jobs);
        exportRecords("vpr_sim-all", cells, results);

        printTableHeader(std::cout,
                         std::string("IPC, scheme=") +
                             renameSchemeName(config.core.scheme),
                         {"ipc", "exec/ci", "missrate"});
        std::vector<double> ipcs;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const SimResults &r = results[i];
            ipcs.push_back(r.ipc());
            printTableRow(std::cout, cells[i].benchmark,
                          {r.ipc(), r.executionsPerCommit(),
                           r.cacheMissRate()},
                          3);
        }
        std::cout << std::string(48, '-') << "\n";
        printTableRow(std::cout, "hmean", {harmonicMean(ipcs)}, 3);
        return 0;
    }

    if (endsWith(target, ".vprt")) {
        FileTraceStream stream(target);
        // Finite trace: keep the warm-up from swallowing it whole.
        if (config.skipInsts >= stream.size() / 2)
            config.skipInsts = stream.size() / 10;
        Simulator sim(stream, config);
        SimResults r = sim.run();
        sim.printReport(std::cout, r);
        exportRecords("vpr_sim", {{target, config}}, {r});
    } else {
        Simulator sim(target, config);
        SimResults r = sim.run();
        sim.printReport(std::cout, r);
        exportRecords("vpr_sim", {{target, config}}, {r});
    }
    return 0;
}
