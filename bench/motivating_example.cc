/**
 * @file
 * Section 3.1 of the paper: the motivating register-pressure example.
 *
 *     load f2,0(r6)    (cache miss, 20 cycles in the paper's example)
 *     fdiv f2,f2,f10   (20 cycles)
 *     fmul f2,f2,f12   (10 cycles)
 *     fadd f2,f2,f1    (5 cycles)
 *
 * The paper counts register-holding times of p1..p3 (the registers
 * renamed to f2 by the first three instructions): 42/52/57 cycles with
 * decode allocation, 21/11/6 with write-back allocation (-75% register
 * pressure) and 41/31/16 with issue allocation (-42%).
 *
 * We replay the same chain on the full simulator with each renaming
 * scheme and report the measured FP register pressure (sum of holding
 * cycles per produced value), reproducing the ordering and rough
 * magnitudes of the example. Latencies differ slightly (our machine
 * uses Table 1 latencies and a 50-cycle miss), so the absolute cycle
 * counts differ; the ranking and the large decode-allocation waste are
 * the point. Grid/table: bench/figures/.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return vpr::bench::figureMain("motivating_example", argc, argv);
}
