/**
 * @file
 * MetricsRecord: the self-describing result record of one simulation.
 *
 * A record is an ordered list of (name, desc, typed value) metrics,
 * keyed by stable dotted names ("core.ipc", "memory.cache_miss_rate").
 * It is populated by visiting stats::StatGroups — MetricsRecord *is* a
 * StatVisitor — so any subsystem that registers stats is exported
 * without bespoke glue. Insertion order is the export schema order:
 * two records built from the same groups have identical schemas, which
 * is what lets shard files from different hosts be merged column-safe.
 */

#ifndef VPR_SIM_METRICS_HH
#define VPR_SIM_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"

namespace vpr
{

/** One named value of a MetricsRecord. */
struct Metric
{
    enum class Kind : std::uint8_t { UInt, Real };

    std::string name;
    std::string desc;
    Kind kind = Kind::UInt;
    std::uint64_t uval = 0;
    double rval = 0.0;

    /** The value as a double regardless of kind. */
    double
    asReal() const
    {
        return kind == Kind::UInt ? static_cast<double>(uval) : rval;
    }

    /** Exact text form: integers in full, reals with round-trip
     *  precision (17 significant digits). */
    std::string text() const;
};

/** An ordered, name-indexed collection of metrics. */
class MetricsRecord : public stats::StatVisitor
{
  public:
    /** StatVisitor: append (or overwrite) a metric. @{ */
    void visitUInt(const std::string &name, const std::string &desc,
                   std::uint64_t v) override;
    void visitReal(const std::string &name, const std::string &desc,
                   double v) override;
    /** @} */

    /** Direct setters for derived metrics. @{ */
    void
    setUInt(const std::string &name, const std::string &desc,
            std::uint64_t v)
    {
        visitUInt(name, desc, v);
    }

    void
    setReal(const std::string &name, const std::string &desc, double v)
    {
        visitReal(name, desc, v);
    }
    /** @} */

    bool has(const std::string &name) const;

    /** Value lookups; a missing name returns 0 (empty record). @{ */
    std::uint64_t counter(const std::string &name) const;
    double real(const std::string &name) const;
    /** @} */

    /** Metrics in schema (insertion) order. */
    const std::vector<Metric> &all() const { return metrics; }

    std::size_t size() const { return metrics.size(); }
    bool empty() const { return metrics.empty(); }

    /** True if @p other has the same metric names in the same order. */
    bool sameSchema(const MetricsRecord &other) const;

  private:
    Metric &slot(const std::string &name, const std::string &desc);

    std::vector<Metric> metrics;
    std::unordered_map<std::string, std::size_t> index;
};

/**
 * Render the histogram a Distribution exported under @p stem
 * ("<stem>.hist[i]", with its geometry from "<stem>.range_min" and
 * "<stem>.bucket_size") as indented ASCII bars with a per-bucket
 * percentage of *all* samples (clipped mass gets below/above-range
 * lines), one line per bucket. Reads only the record, so tables
 * re-rendered from merged shard files are byte-identical.
 */
void printMetricHistogram(std::ostream &os, const MetricsRecord &m,
                          const std::string &stem);

} // namespace vpr

#endif // VPR_SIM_METRICS_HH
