#include "sim/sweep.hh"

#include "common/logging.hh"
#include "sim/params.hh"

namespace vpr
{

SweepAxis
parseSweepAxis(const std::string &spec)
{
    std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0)
        VPR_FATAL("bad sweep spec '", spec,
                  "' (expected key=v1,v2,...)");
    SweepAxis axis;
    axis.key = spec.substr(0, eq);
    std::size_t start = eq + 1;
    for (;;) {
        std::size_t comma = spec.find(',', start);
        std::string value = spec.substr(
            start, comma == std::string::npos ? comma : comma - start);
        if (value.empty())
            VPR_FATAL("bad sweep spec '", spec, "' (empty value)");
        axis.values.push_back(std::move(value));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return axis;
}

std::vector<GridCell>
buildSweepGrid(const std::vector<std::string> &benchmarks,
               const SimConfig &base, const std::vector<SweepAxis> &axes)
{
    for (const SweepAxis &axis : axes)
        VPR_ASSERT(!axis.values.empty(), "sweep axis '", axis.key,
                   "' has no values");

    std::vector<GridCell> cells;
    std::vector<std::size_t> pick(axes.size(), 0);
    for (const std::string &bench : benchmarks) {
        for (;;) {
            SimConfig config = base;
            {
                ConfigRegistry registry(config);
                for (std::size_t a = 0; a < axes.size(); ++a)
                    registry.set(axes[a].key, axes[a].values[pick[a]]);
            }
            cells.emplace_back(bench, config);

            // Odometer step, rightmost axis fastest; a carry off the
            // left end means the benchmark's combinations are done
            // (and pick is back at all zeroes for the next one).
            bool carry = true;
            for (std::size_t a = axes.size(); carry && a > 0;) {
                --a;
                if (++pick[a] < axes[a].values.size())
                    carry = false;
                else
                    pick[a] = 0;
            }
            if (carry)
                break;
        }
    }
    return cells;
}

} // namespace vpr
