/**
 * @file
 * google-benchmark micro-benchmarks of the renaming structures and the
 * other hot simulator paths. These are engineering benchmarks (how fast
 * is the simulator), not paper experiments; they guard against
 * performance regressions in the structures the cycle loop hammers.
 */

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "branch/bht.hh"
#include "common/state.hh"
#include "common/random.hh"
#include "core/core.hh"
#include "core/iq.hh"
#include "core/lsq.hh"
#include "core/rob.hh"
#include "core/stages/latches.hh"
#include "memory/cache.hh"
#include "rename/conventional.hh"
#include "rename/virtual_physical.hh"
#include "sim/experiment.hh"
#include "sim/metrics.hh"
#include "trace/kernels/kernels.hh"

#include "../tests/support/alloc_count.hh"

namespace
{

using namespace vpr;

RenameConfig
renameCfg()
{
    RenameConfig rc;
    rc.numPhysRegs = 64;
    rc.numVPRegs = 160;
    rc.nrrInt = 32;
    rc.nrrFp = 32;
    return rc;
}

DynInst
makeAlu(InstSeqNum seq)
{
    DynInst d;
    d.si = StaticInst::alu(RegId::intReg(seq % 30),
                           RegId::intReg((seq + 1) % 32),
                           RegId::intReg((seq + 2) % 32));
    return d;
}

/** Bind @p d to slot @p sl of @p pool (freshly reset) and stamp @p seq
 *  — what Rob::allocate() does in the real pipeline. */
void
bindAt(InstHotPool &pool, DynInst &d, HotIdx sl, InstSeqNum seq)
{
    pool.reset(sl);
    d.bindHot(&pool, sl);
    d.setSeq(seq);
}

/** Rename+complete+commit round trip, conventional scheme. */
void
BM_ConventionalRenameRoundTrip(benchmark::State &state)
{
    ConventionalRename rn(renameCfg());
    InstSeqNum seq = 0;
    Cycle now = 0;
    InstHotPool pool(16);
    std::vector<DynInst> ring(16);
    std::size_t head = 0, tail = 0, live = 0;
    for (auto _ : state) {
        ++now;
        rn.tick(now);
        if (live < 8) {
            DynInst &d = ring[tail];
            d = makeAlu(++seq);
            bindAt(pool, d, static_cast<HotIdx>(tail), seq);
            rn.renameInst(d, now);
            rn.complete(d, now);
            tail = (tail + 1) % ring.size();
            ++live;
        }
        if (live > 4) {
            rn.commitInst(ring[head], now);
            head = (head + 1) % ring.size();
            --live;
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(seq));
}
BENCHMARK(BM_ConventionalRenameRoundTrip);

/** Rename+complete+commit round trip, virtual-physical write-back. */
void
BM_VirtualPhysicalRenameRoundTrip(benchmark::State &state)
{
    VirtualPhysicalRename rn(renameCfg(), false);
    InstSeqNum seq = 0;
    Cycle now = 0;
    InstHotPool pool(16);
    std::vector<DynInst> ring(16);
    std::size_t head = 0, tail = 0, live = 0;
    for (auto _ : state) {
        ++now;
        rn.tick(now);
        if (live < 8) {
            DynInst &d = ring[tail];
            d = makeAlu(++seq);
            bindAt(pool, d, static_cast<HotIdx>(tail), seq);
            rn.renameInst(d, now);
            rn.complete(d, now);
            tail = (tail + 1) % ring.size();
            ++live;
        }
        if (live > 4) {
            rn.commitInst(ring[head], now);
            head = (head + 1) % ring.size();
            --live;
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(seq));
}
BENCHMARK(BM_VirtualPhysicalRenameRoundTrip);

/** IQ broadcast wakeup over a full 128-entry queue. */
void
BM_IqWakeup(benchmark::State &state)
{
    InstHotPool pool(128);
    InstQueue iq(128, pool);
    iq.setTrackReady(false);  // no stage drains the ready list here
    std::vector<DynInst> insts(128);
    for (std::size_t i = 0; i < insts.size(); ++i) {
        insts[i] = makeAlu(i + 1);
        bindAt(pool, insts[i], static_cast<HotIdx>(i), i + 1);
        insts[i].src[0].valid = true;
        insts[i].src[0].cls = RegClass::Int;
        insts[i].src[0].tag = static_cast<std::uint16_t>(i % 64);
        iq.insert(&insts[i]);
    }
    std::uint16_t tag = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(iq.wakeup(RegClass::Int, tag, tag));
        for (auto *inst : iq.entries())
            inst->src[0].ready = false;  // rearm
        tag = (tag + 1) % 64;
    }
}
BENCHMARK(BM_IqWakeup);

/** Issue-path IQ maintenance: remove a mid-queue entry by position and
 *  re-insert it (seq-ordered). Guards the no-snapshot issue scan and the
 *  binary-search remove. */
void
BM_IqRemoveReinsert(benchmark::State &state)
{
    InstHotPool pool(128);
    InstQueue iq(128, pool);
    iq.setTrackReady(false);  // no stage drains the ready list here
    std::vector<DynInst> insts(128);
    for (std::size_t i = 0; i < insts.size(); ++i) {
        insts[i] = makeAlu(i + 1);
        bindAt(pool, insts[i], static_cast<HotIdx>(i), i + 1);
        iq.insert(&insts[i]);
    }
    for (auto _ : state) {
        DynInst *inst = iq.at(37);
        iq.removeAt(37);
        benchmark::DoNotOptimize(iq.size());
        iq.insert(inst);
    }
}
BENCHMARK(BM_IqRemoveReinsert);

/** LSQ fixture: 96 in-flight memory ops, every store's address known,
 *  plus one ready load checked against them — the common case the
 *  disambiguation path pays for on every load issue. */
class LsqDisambigFixture
{
  public:
    explicit LsqDisambigFixture(bool scanDisambig) : pool(128), lsq(128)
    {
        lsq.setScanDisambig(scanDisambig);
        insts.reserve(97);
        for (InstSeqNum sn = 1; sn <= 96; ++sn) {
            Addr addr = 0x1000 + (sn * 24) % 1024;
            DynInst d;
            if (sn % 3 == 0) {
                d.si = StaticInst::store(RegId::intReg(3),
                                         RegId::intReg(2), addr);
            } else {
                d.si = StaticInst::load(RegId::intReg(1),
                                        RegId::intReg(2), addr);
            }
            insts.push_back(d);
            bindAt(pool, insts.back(), static_cast<HotIdx>(sn - 1), sn);
            lsq.insert(&insts.back());
            if (d.si.isStore()) {
                insts.back().addrReady = true;
                insts.back().addrReadyCycle = sn;
                lsq.onStoreAddrComputed(&insts.back());
            }
        }
        DynInst probe;
        probe.si = StaticInst::load(RegId::intReg(1), RegId::intReg(2),
                                    0x4000);  // no conflict: full walk
        insts.push_back(probe);
        bindAt(pool, insts.back(), 96, 97);
        lsq.insert(&insts.back());
    }

    LoadCheck check() { return lsq.disambiguate(&insts.back(), 200); }

  private:
    InstHotPool pool;
    Lsq lsq;
    std::vector<DynInst> insts;
};

/** Legacy reverse-scan disambiguation over a full queue. */
void
BM_LsqDisambigScan(benchmark::State &state)
{
    LsqDisambigFixture f(true);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.check());
}
BENCHMARK(BM_LsqDisambigScan);

/** Address-indexed store-table disambiguation, same queue contents. */
void
BM_LsqDisambigTable(benchmark::State &state)
{
    LsqDisambigFixture f(false);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.check());
}
BENCHMARK(BM_LsqDisambigTable);

/** Completion-queue churn: the issue→complete latch's per-cycle
 *  pattern — a burst of schedules at mixed FU/cache latencies, then a
 *  drain of everything due this cycle. The two rows compare the legacy
 *  binary heap (O(log n) sift per schedule/pop) against the
 *  cycle-indexed calendar ring (O(1) append/drain). */
void
completionQueueChurn(benchmark::State &state, bool useCalendar)
{
    InstHotPool pool(64);
    std::vector<DynInst> insts(64);
    for (std::size_t i = 0; i < insts.size(); ++i) {
        insts[i] = makeAlu(i + 1);
        bindAt(pool, insts[i], static_cast<HotIdx>(i), i + 1);
    }
    CompletionQueue cq(useCalendar, 128);
    static const Cycle lat[8] = {1, 1, 1, 2, 2, 4, 12, 52};
    Cycle now = 0;
    InstSeqNum seq = 0;
    for (auto _ : state) {
        ++now;
        for (unsigned i = 0; i < 8; ++i) {
            DynInst *inst = &insts[seq % insts.size()];
            cq.schedule(now + lat[i], ++seq, inst);
        }
        while (cq.hasDue(now))
            benchmark::DoNotOptimize(cq.popDue());
    }
    state.SetItemsProcessed(static_cast<int64_t>(seq));
}

void
BM_CompletionQueueHeap(benchmark::State &state)
{
    completionQueueChurn(state, false);
}
BENCHMARK(BM_CompletionQueueHeap);

void
BM_CompletionQueueCalendar(benchmark::State &state)
{
    completionQueueChurn(state, true);
}
BENCHMARK(BM_CompletionQueueCalendar);

/** The commit stage's head walk: check the head's phase through the
 *  packed hot-state arrays, retire a commit-width burst, refill. Guards
 *  the data-oriented split — the walk must not touch the DynInsts. */
void
BM_RobCommitWalk(benchmark::State &state)
{
    InstHotPool pool(128);
    Rob rob(128, pool);
    InstSeqNum seq = 0;
    auto fill = [&](DynInst *d) {
        d->si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                                RegId::intReg(3));
        d->setSeq(++seq);
        d->setPhase(InstPhase::Completed);
    };
    while (!rob.full())
        fill(rob.allocate());
    const InstHotPool &hot = rob.hotPool();
    for (auto _ : state) {
        unsigned committed = 0;
        while (committed < 8 && !rob.empty() &&
               hot.phaseOf(rob.headSlot()) == InstPhase::Completed) {
            rob.commitHead();
            ++committed;
        }
        while (!rob.full())
            fill(rob.allocate());
        benchmark::DoNotOptimize(committed);
    }
    state.SetItemsProcessed(static_cast<int64_t>(seq));
}
BENCHMARK(BM_RobCommitWalk);

/** Non-blocking cache: streaming accesses (25% miss). */
void
BM_CacheStream(benchmark::State &state)
{
    NonBlockingCache cache;
    Cycle now = 0;
    Addr addr = 0x1000000;
    for (auto _ : state) {
        now += 2;
        addr += 8;
        benchmark::DoNotOptimize(cache.access(addr, false, now));
    }
}
BENCHMARK(BM_CacheStream);

/** BHT predict+update. */
void
BM_BhtPredict(benchmark::State &state)
{
    BhtPredictor bht(2048);
    Random rng(7);
    Addr pc = 0x1000;
    for (auto _ : state) {
        pc += 4;
        benchmark::DoNotOptimize(
            bht.predictAndUpdate(pc, rng.chancePermille(700)));
    }
}
BENCHMARK(BM_BhtPredict);

/** End-to-end simulator throughput on one kernel. With `legacyScans`
 *  the cycle loop runs every reference scan (full-queue wakeup, full
 *  oldest-first issue walk, reverse LSQ disambiguation) instead of the
 *  event-driven scheduler core — the two rows report the scheduler
 *  speedup as a number, byte-identical results guaranteed by the
 *  determinism tests. */
void
simulatorEndToEnd(benchmark::State &state, const char *kernel,
                  bool legacyScans)
{
    for (auto _ : state) {
        SimConfig config = paperConfig();
        config.skipInsts = 0;
        config.measureInsts = 20000;
        config.core.fetch.wrongPath = WrongPathMode::Stall;
        config.core.iqScanWakeup = legacyScans;
        config.core.iqScanIssue = legacyScans;
        config.core.lsqScanDisambig = legacyScans;
        config.core.cqCalendar = !legacyScans;
        Simulator sim(kernel, config);
        benchmark::DoNotOptimize(sim.run().ipc());
    }
}

void
BM_SimulatorEndToEnd(benchmark::State &state)
{
    simulatorEndToEnd(state, "swim", false);
}
BENCHMARK(BM_SimulatorEndToEnd)->Unit(benchmark::kMillisecond);

void
BM_SimulatorEndToEndLegacyScans(benchmark::State &state)
{
    simulatorEndToEnd(state, "swim", true);
}
BENCHMARK(BM_SimulatorEndToEndLegacyScans)->Unit(benchmark::kMillisecond);

/** The same pair on a pointer-chasing integer kernel (more loads held
 *  on store addresses, so the LSQ path weighs more). */
void
BM_SimulatorEndToEndCompress(benchmark::State &state)
{
    simulatorEndToEnd(state, "compress", false);
}
BENCHMARK(BM_SimulatorEndToEndCompress)->Unit(benchmark::kMillisecond);

void
BM_SimulatorEndToEndCompressLegacyScans(benchmark::State &state)
{
    simulatorEndToEnd(state, "compress", true);
}
BENCHMARK(BM_SimulatorEndToEndCompressLegacyScans)
    ->Unit(benchmark::kMillisecond);

/** SMARTS-style sampled run over the same instruction budget as the
 *  end-to-end rows (measure 20000, default sampling geometry): the
 *  BM_SimulatorSampled / BM_SimulatorEndToEnd ratio is the sampling
 *  speedup the trajectory tracks. */
void
simulatorSampled(benchmark::State &state, const char *kernel)
{
    for (auto _ : state) {
        SimConfig config = paperConfig();
        config.skipInsts = 0;
        config.measureInsts = 20000;
        config.core.fetch.wrongPath = WrongPathMode::Stall;
        config.sampling.enable = true;
        Simulator sim(kernel, config);
        benchmark::DoNotOptimize(sim.run().ipc());
    }
}

void
BM_SimulatorSampled(benchmark::State &state)
{
    simulatorSampled(state, "swim");
}
BENCHMARK(BM_SimulatorSampled)->Unit(benchmark::kMillisecond);

void
BM_SimulatorSampledCompress(benchmark::State &state)
{
    simulatorSampled(state, "compress");
}
BENCHMARK(BM_SimulatorSampledCompress)->Unit(benchmark::kMillisecond);

/** A warmed, drained core ready to checkpoint: 20 k detailed
 *  instructions of swim, then a pipeline drain. */
std::unique_ptr<Core>
warmedCore(TraceStream &stream, const CoreConfig &config)
{
    auto core = std::make_unique<Core>(stream, config);
    core->runUntilCommitted(20000);
    core->drainForCheckpoint();
    return core;
}

/** Serialize the warm state: the visitState walk plus checkpoint
 *  framing (no disk, no compression — that is the container's cost,
 *  reported by the save/restore end-to-end rows below). */
void
BM_CheckpointSave(benchmark::State &state)
{
    SimConfig config = paperConfig();
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    auto stream = makeBenchmarkStream("swim");
    auto core = warmedCore(*stream, config.core);
    std::size_t bytes = 0;
    for (auto _ : state) {
        StateSaver saver;
        core->visitState(saver, CkptScope::Full);
        std::string raw = packCheckpoint(CkptScope::Full, 1,
                                         saver.take());
        bytes = raw.size();
        benchmark::DoNotOptimize(raw.data());
    }
    state.counters["ckpt_bytes"] =
        static_cast<double>(bytes);
}
BENCHMARK(BM_CheckpointSave);

/** Restore the warm state into a fresh core: frame checks, the
 *  visitState walk and the trace-position replay. */
void
BM_CheckpointRestore(benchmark::State &state)
{
    SimConfig config = paperConfig();
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    auto stream = makeBenchmarkStream("swim");
    std::string raw;
    {
        auto core = warmedCore(*stream, config.core);
        StateSaver saver;
        core->visitState(saver, CkptScope::Full);
        raw = packCheckpoint(CkptScope::Full, 1, saver.take());
    }
    for (auto _ : state) {
        std::string payload = unpackCheckpoint(raw, CkptScope::Full, 1);
        Core fresh(*stream, config.core);
        StateLoader loader(payload);
        fresh.visitState(loader, CkptScope::Full);
        benchmark::DoNotOptimize(fresh.committedInsts());
    }
}
BENCHMARK(BM_CheckpointRestore);

/** Warm-start payoff, end to end: one grid cell with a 100 k
 *  instruction warm-up and a 20 k measured region, cold versus
 *  restoring the warm-up from a populated --ckpt-dir. The
 *  BM_SimulatorColdStart / BM_SimulatorWarmStart ratio is the per-cell
 *  sweep speedup the checkpoint cache buys (target >= 2x). */
void
simulatorWarmStart(benchmark::State &state, bool useCache)
{
    namespace fs = std::filesystem;
    SimConfig config = paperConfig();
    config.skipInsts = 100000;
    config.measureInsts = 20000;
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    const fs::path dir =
        fs::temp_directory_path() / "vpr_bench_warm_start";
    if (useCache) {
        fs::remove_all(dir);
        fs::create_directories(dir);
        config.ckpt.dir = dir.string();
        Simulator prime("swim", config);
        prime.run();  // populate the cache once, outside the timing
    }
    for (auto _ : state) {
        Simulator sim("swim", config);
        benchmark::DoNotOptimize(sim.run().ipc());
    }
    if (useCache)
        fs::remove_all(dir);
}

void
BM_SimulatorColdStart(benchmark::State &state)
{
    simulatorWarmStart(state, false);
}
BENCHMARK(BM_SimulatorColdStart)->Unit(benchmark::kMillisecond);

void
BM_SimulatorWarmStart(benchmark::State &state)
{
    simulatorWarmStart(state, true);
}
BENCHMARK(BM_SimulatorWarmStart)->Unit(benchmark::kMillisecond);

/** Fixed per-cell overhead: construct + run + collect of one tiny
 *  sampled grid cell through the parallel engine, the unit of work a
 *  sweep pays per cell beyond the measured instructions. The sampled
 *  region is deliberately small so construction, stats registration
 *  and metric collection dominate — the constant term this row
 *  tracks. */
void
BM_GridCellOverhead(benchmark::State &state)
{
    SimConfig config = paperConfig();
    config.skipInsts = 0;
    config.measureInsts = 4000;
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    config.sampling.enable = true;
    config.sampling.periodInsts = 2000;
    // Warm the worker's simulator pool so the measured iterations see
    // the steady state a long sweep sees: reinit, not construction.
    {
        std::vector<GridCell> cells{{"swim", config}};
        runGrid(cells, 1);
    }
    std::uint64_t allocs = 0;
    std::uint64_t iters = 0;
    for (auto _ : state) {
        std::vector<GridCell> cells{{"swim", config}};
        testsupport::AllocGuard g;
        benchmark::DoNotOptimize(runGrid(cells, 1)[0].ipc());
        allocs += g.count();
        ++iters;
    }
    // Heap traffic per pooled cell (construction, run and collection;
    // excludes the cell vector built outside the guard). Tracked by the
    // perf trajectory next to the time — a reinit-path regression shows
    // up here before it is big enough to move wall time.
    state.counters["allocs_per_cell"] =
        iters ? static_cast<double>(allocs) / static_cast<double>(iters)
              : 0.0;
}
BENCHMARK(BM_GridCellOverhead);

/** One full stats-tree walk into an existing MetricsRecord — the
 *  per-interval collection cost of a sampled run. Steady state (every
 *  visit after the first revisits the same record in the same order)
 *  must not construct strings or allocate. */
void
BM_CollectMetrics(benchmark::State &state)
{
    SimConfig config = paperConfig();
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    auto stream = makeBenchmarkStream("swim");
    Core core(*stream, config.core);
    core.runUntilCommitted(2000);
    MetricsRecord rec;
    core.visitStats(rec);  // first walk builds the record (warm-up)
    core.visitStats(rec);
    std::uint64_t allocs = 0;
    for (auto _ : state) {
        testsupport::AllocGuard g;
        core.visitStats(rec);
        allocs += g.count();
        benchmark::DoNotOptimize(rec.size());
    }
    // The interned-symbol contract, pinned in the row itself: a warm
    // walk revisits the same record in the same order and must never
    // construct a string or touch the heap.
    state.counters["allocs_per_walk"] = static_cast<double>(allocs);
    if (allocs != 0)
        state.SkipWithError("warm metrics walk allocated");
}
BENCHMARK(BM_CollectMetrics);

} // namespace

int
main(int argc, char **argv)
{
    // The library's own "library_build_type" reports how the distro
    // built libbenchmark (always "debug" for Debian's package) — it
    // says nothing about this binary. Record the simulator's actual
    // build flavour so perf_diff can refuse debug baselines.
#ifdef NDEBUG
    benchmark::AddCustomContext("vpr_build_type", "release");
#else
    benchmark::AddCustomContext("vpr_build_type", "debug");
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
