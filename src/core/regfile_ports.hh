/**
 * @file
 * Register-file and cache port arbitration.
 *
 * The paper's register files have 16 read and 8 write ports each, and
 * the cache has 3 ports. Reads are consumed at issue within one cycle;
 * writes are scheduled at completion time (completion slips to the next
 * cycle with a free port); cache ports are claimed for the cycle of the
 * access. The arbitration logic lives in regfile_ports.cc so the many
 * stage translation units that include this header stay light.
 */

#ifndef VPR_CORE_REGFILE_PORTS_HH
#define VPR_CORE_REGFILE_PORTS_HH

#include <cstdint>
#include <map>

#include "common/types.hh"
#include "isa/reg.hh"

namespace vpr
{

/** Per-cycle counting arbiter used for write and cache ports. */
class PortSchedule
{
  public:
    explicit PortSchedule(unsigned portsPerCycle)
        : ports(portsPerCycle)
    {}

    /** Claim a port at exactly @p cycle; false if none left. */
    bool tryClaim(Cycle cycle);

    /** First cycle >= @p earliest with a free port; claims it. */
    Cycle claimFirstFree(Cycle earliest);

    /** Drop bookkeeping for cycles before @p now. */
    void pruneBefore(Cycle now);

    unsigned portsPerCycle() const { return ports; }

    /** Ports already claimed at @p cycle (tests). */
    unsigned used(Cycle cycle) const;

    void clear() { usage.clear(); }

  private:
    unsigned ports;
    std::map<Cycle, unsigned> usage;
};

/** Read/write port tracking for both register files. */
class RegFilePorts
{
  public:
    RegFilePorts(unsigned readPorts, unsigned writePorts)
        : nReadPorts(readPorts),
          writes{PortSchedule(writePorts), PortSchedule(writePorts)}
    {}

    /** Start a cycle: read ports replenish. */
    void beginCycle(Cycle now);

    /** Could @p nInt integer and @p nFp FP reads be claimed now? */
    bool canClaimReads(unsigned nInt, unsigned nFp) const;

    /** Claim read ports for one issuing instruction (both classes). */
    bool tryClaimReads(unsigned nInt, unsigned nFp);

    /** Undo a claim made this cycle (issue aborted later in the chain). */
    void unclaimReads(unsigned nInt, unsigned nFp);

    /** Schedule a result write at the first free cycle >= earliest. */
    Cycle scheduleWrite(RegClass cls, Cycle earliest);

    unsigned readPortsPerCycle() const { return nReadPorts; }
    unsigned
    writePortsPerCycle() const
    {
        return writes[0].portsPerCycle();
    }

  private:
    unsigned nReadPorts;
    unsigned readsUsed[kNumRegClasses] = {0, 0};
    PortSchedule writes[kNumRegClasses];
};

} // namespace vpr

#endif // VPR_CORE_REGFILE_PORTS_HH
