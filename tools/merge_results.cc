/**
 * @file
 * merge_results — stitch sharded sweep records back together.
 *
 * Usage:
 *   merge_results [-o merged.csv] [--render] [--set <k>=<v>]
 *                 [--no-verify-config] shard0.csv shard1.csv ...
 *
 * Reads the CSV record files written by the bench binaries' (or
 * vpr_sim --sweep's) --out flag (one record per grid cell, any subset
 * per file), verifies that together they cover the whole grid exactly
 * once, and writes the full cell-ordered result set — byte-identical
 * to what a single unsharded --out run would have produced.
 *
 * Shards carry full config provenance: the merge refuses inputs whose
 * embedded provenance disagrees. Shards produced from different base
 * configurations fail the whole-grid digest comparison, and when the
 * figure named in the metadata is in the bench registry, every row is
 * additionally checked key by key against the rebuilt grid — a record
 * from a stale binary or a differently-configured run is fatal, naming
 * the first differing dotted key. Pass the same --set overrides the
 * shards ran with so the rebuilt grid matches; --no-verify-config
 * skips the registry check (the digest check always runs).
 *
 * With --render, the paper-style table is re-rendered from the merged
 * records to stdout. The figure named in the file metadata is looked up
 * in the bench figure registry and its renderer — the same code the
 * bench binary runs — is fed the reconstructed results, so the table is
 * byte-identical to the unsharded run's.
 *
 * Options:
 *   -o <path>    write the merged CSV (default: stdout unless --render)
 *   --render     re-render the figure's table from the merged records
 *   --set <k>=<v>      config override the shards were run with
 *   --no-verify-config skip the per-row provenance check
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "figures.hh"
#include "sim/results_io.hh"

using namespace vpr;

int
main(int argc, char **argv)
{
    std::string outPath;
    bool render = false;
    bool verifyConfig = true;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--render") == 0) {
            render = true;
        } else if (std::strcmp(argv[i], "--no-verify-config") == 0) {
            verifyConfig = false;
        } else if (std::strncmp(argv[i], "--set=", 6) == 0) {
            bench::addConfigOverride(argv[i] + 6);
        } else if (std::strcmp(argv[i], "--set") == 0 && i + 1 < argc) {
            bench::addConfigOverride(argv[++i]);
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::cout << "usage: " << argv[0]
                      << " [-o merged.csv] [--render] [--set <k>=<v>]\n"
                         "       [--no-verify-config] shard.csv...\n"
                         "see the file header for details\n";
            return 0;
        } else if (argv[i][0] == '-') {
            std::cerr << "unknown option '" << argv[i] << "'\n";
            return 1;
        } else {
            inputs.push_back(argv[i]);
        }
    }
    if (inputs.empty()) {
        std::cerr << "usage: " << argv[0]
                  << " [-o merged.csv] [--render] shard.csv...\n";
        return 1;
    }

    std::vector<ResultsFile> shards;
    for (const std::string &path : inputs)
        shards.push_back(readResultsCsvFile(path));

    // Refuse mismatched provenance before any output: per-row against
    // the rebuilt grid when the figure is registered (names the first
    // differing dotted key); mergeResults' whole-grid digest check
    // covers the rest.
    const bench::FigureDef *def = bench::findFigure(shards.front().figure);
    if (verifyConfig && def) {
        const std::vector<GridCell> cells = def->build();
        if (cells.size() != shards.front().totalCells)
            VPR_FATAL("figure '", shards.front().figure, "' now has ",
                      cells.size(), " cells but the records carry ",
                      shards.front().totalCells,
                      " — re-run the sweep with this binary");
        for (std::size_t i = 0; i < shards.size(); ++i)
            verifyCellProvenance(shards[i], cells, inputs[i]);
    }

    ResultsFile merged = mergeResults(shards);

    if (!outPath.empty()) {
        std::ofstream os(outPath);
        if (!os)
            VPR_FATAL("cannot open '", outPath, "' for writing");
        writeMergedCsv(os, merged);
        if (!os)
            VPR_FATAL("error writing '", outPath, "'");
    } else if (!render) {
        writeMergedCsv(std::cout, merged);
    }

    if (render) {
        if (!def)
            VPR_FATAL("figure '", merged.figure,
                      "' is not in the bench registry; cannot render "
                      "(merge with -o still works)");
        const std::vector<GridCell> cells = def->build();
        if (cells.size() != merged.totalCells)
            VPR_FATAL("figure '", merged.figure, "' now has ",
                      cells.size(), " cells but the records carry ",
                      merged.totalCells,
                      " — re-run the sweep with this binary");
        def->render(cells, resultsFromFile(merged), std::cout);
    }
    return 0;
}
