/**
 * @file
 * Wrong-path memory operations (speculative cache pollution): the
 * SimConfig flag is off by default (tier-1 numbers unchanged), and when
 * enabled the synthesized wrong path really probes the cache, runs to
 * completion, and stays deterministic.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace vpr
{
namespace
{

SimConfig
wrongPathConfig()
{
    SimConfig c = paperConfig();
    c.skipInsts = 1000;
    c.measureInsts = 15000;
    c.core.fetch.wrongPath = WrongPathMode::Synthesize;
    return c;
}

TEST(WrongPathMem, DefaultOffMatchesBaseline)
{
    SimConfig c = wrongPathConfig();
    EXPECT_FALSE(c.core.fetch.wrongPathMem);
    SimResults a = runOne("compress", c);
    c.core.fetch.wrongPathMem = false;  // explicit off == default
    SimResults b = runOne("compress", c);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.metrics.counter("memory.cache_accesses"),
              b.metrics.counter("memory.cache_accesses"));
}

TEST(WrongPathMem, ProbesTheCacheAndCompletes)
{
    SimConfig c = wrongPathConfig();
    SimResults base = runOne("compress", c);
    c.core.fetch.wrongPathMem = true;
    SimResults mem = runOne("compress", c);

    // The run completes its budget and the wrong path reached the cache.
    EXPECT_GE(mem.committed(), 15000u);
    EXPECT_GT(mem.mispredicts(), 0u);
    EXPECT_GT(mem.metrics.counter("memory.cache_accesses"),
              base.metrics.counter("memory.cache_accesses"));
}

TEST(WrongPathMem, IsDeterministic)
{
    SimConfig c = wrongPathConfig();
    c.core.fetch.wrongPathMem = true;
    c.seed = 123;
    SimResults a = runOne("compress", c);
    SimResults b = runOne("compress", c);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.issued(), b.issued());
    EXPECT_EQ(a.squashed(), b.squashed());
    EXPECT_EQ(a.metrics.counter("memory.cache_misses"),
              b.metrics.counter("memory.cache_misses"));
}

TEST(WrongPathMem, WorksUnderEveryScheme)
{
    SimConfig c = wrongPathConfig();
    c.measureInsts = 6000;
    c.core.fetch.wrongPathMem = true;
    // No ConventionalEarlyRelease: early release is documented as
    // incompatible with any wrong-path synthesis (early_release.hh).
    for (RenameScheme s :
         {RenameScheme::Conventional, RenameScheme::VPAllocAtWriteback,
          RenameScheme::VPAllocAtIssue}) {
        c.setScheme(s);
        if (isVirtualPhysical(s))
            c.setNrr(32);
        SimResults r = runOne("go", c);
        EXPECT_GE(r.committed(), 6000u) << renameSchemeName(s);
        EXPECT_GT(r.ipc(), 0.0) << renameSchemeName(s);
    }
}

} // namespace
} // namespace vpr
