/**
 * @file
 * Reorder buffer.
 *
 * Owns the DynInst storage for all in-flight instructions. The paper's
 * configuration is a 128-entry ROB; its size *is* the instruction
 * window. Entries carry the Figure-2 fields (logical destination,
 * completed bit, previous VP mapping) inside DynInst. The buffer
 * supports the paper's recovery walk: popping entries youngest-first
 * down to the offending instruction.
 */

#ifndef VPR_CORE_ROB_HH
#define VPR_CORE_ROB_HH

#include "common/circular_buffer.hh"
#include "common/stats.hh"
#include "core/dyn_inst.hh"

namespace vpr
{

/** The reorder buffer; owner of in-flight DynInsts. */
class Rob
{
  public:
    explicit Rob(std::size_t entries)
        : buf(entries),
          occupancy(stats::Distribution::evenBuckets(
              "occupancy", "entries occupied per cycle", 0, entries, 16))
    {
        group.add(&occupancy);
    }

    /** Register the "rob" stat group into the core's stats tree. */
    void regStats(stats::StatRegistry &r) { r.add(&group); }

    bool full() const { return buf.full(); }
    bool empty() const { return buf.empty(); }
    std::size_t size() const { return buf.size(); }
    std::size_t capacity() const { return buf.capacity(); }

    /**
     * Insert a renamed instruction at the tail.
     * @return a pointer that stays valid until the entry is removed.
     */
    DynInst *
    insert(const DynInst &inst)
    {
        buf.pushBack(inst);
        return &buf.back();
    }

    /** Oldest instruction. */
    DynInst &head() { return buf.front(); }
    const DynInst &head() const { return buf.front(); }

    /** Youngest instruction. */
    DynInst &tail() { return buf.back(); }

    /** Retire the oldest instruction. */
    void commitHead() { buf.popFront(); }

    /** Remove the youngest instruction (recovery walk step). */
    void squashTail() { buf.popBack(); }

    /** Logical indexing, 0 = oldest (tests/inspection). */
    DynInst &at(std::size_t i) { return buf.at(i); }
    const DynInst &at(std::size_t i) const { return buf.at(i); }

    /** Record the occupancy for this cycle. */
    void sampleOccupancy() { occupancy.sample(buf.size()); }

    const stats::Distribution &occupancyStat() const { return occupancy; }
    stats::Distribution &occupancyStat() { return occupancy; }

  private:
    CircularBuffer<DynInst> buf;
    stats::StatGroup group{"rob"};
    stats::Distribution occupancy;
};

} // namespace vpr

#endif // VPR_CORE_ROB_HH
