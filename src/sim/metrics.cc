#include "sim/metrics.hh"

#include <iomanip>
#include <sstream>

namespace vpr
{

std::string
Metric::text() const
{
    if (kind == Kind::UInt)
        return std::to_string(uval);
    std::ostringstream os;
    os << std::setprecision(17) << rval;
    return os.str();
}

Metric &
MetricsRecord::slot(const std::string &name, const std::string &desc)
{
    auto it = index.find(name);
    if (it != index.end())
        return metrics[it->second];
    index.emplace(name, metrics.size());
    metrics.push_back(Metric{name, desc, Metric::Kind::UInt, 0, 0.0});
    return metrics.back();
}

void
MetricsRecord::visitUInt(const std::string &name, const std::string &desc,
                         std::uint64_t v)
{
    Metric &m = slot(name, desc);
    m.kind = Metric::Kind::UInt;
    m.uval = v;
}

void
MetricsRecord::visitReal(const std::string &name, const std::string &desc,
                         double v)
{
    Metric &m = slot(name, desc);
    m.kind = Metric::Kind::Real;
    m.rval = v;
}

bool
MetricsRecord::has(const std::string &name) const
{
    return index.count(name) != 0;
}

std::uint64_t
MetricsRecord::counter(const std::string &name) const
{
    auto it = index.find(name);
    if (it == index.end())
        return 0;
    const Metric &m = metrics[it->second];
    return m.kind == Metric::Kind::UInt
               ? m.uval
               : static_cast<std::uint64_t>(m.rval);
}

double
MetricsRecord::real(const std::string &name) const
{
    auto it = index.find(name);
    return it == index.end() ? 0.0 : metrics[it->second].asReal();
}

bool
MetricsRecord::sameSchema(const MetricsRecord &other) const
{
    if (metrics.size() != other.metrics.size())
        return false;
    for (std::size_t i = 0; i < metrics.size(); ++i)
        if (metrics[i].name != other.metrics[i].name)
            return false;
    return true;
}

} // namespace vpr
