/**
 * @file
 * Virtual-physical register renaming — the paper's contribution
 * (sections 3.2-3.4).
 *
 * Destinations are renamed at decode to *virtual-physical* (VP)
 * registers: pure tags with no storage that carry dependences. The
 * physical register that will hold the value is allocated late — at
 * write-back (primary policy) or at issue (alternative) — and the
 * binding is recorded in the PMT. Two tables implement the scheme:
 *
 *  - GMT (general map table), indexed by logical register:
 *      { last VP mapping, last physical mapping P, valid bit V }.
 *  - PMT (physical map table), indexed by VP register:
 *      the physical register the VP register was mapped to, if any.
 *
 * Completion broadcasts the (VP, physical) pair: the core forwards it to
 * the instruction queue while this class updates the GMT entry whose VP
 * field matches. Commit frees the *previous* VP mapping of the logical
 * destination plus the physical register found through the PMT; the
 * paper charges one extra cycle for that PMT lookup, modelled here by
 * making commit-time frees visible only from the next cycle.
 *
 * Deadlock avoidance: a ReservationTracker per register class implements
 * the NRR policy (section 3.3). Under write-back allocation a completing
 * instruction that may not allocate is squashed back to the instruction
 * queue (the core re-executes it); under issue allocation the
 * instruction simply does not issue.
 */

#ifndef VPR_RENAME_VIRTUAL_PHYSICAL_HH
#define VPR_RENAME_VIRTUAL_PHYSICAL_HH

#include <vector>

#include "rename/rename_iface.hh"
#include "rename/reservation.hh"

namespace vpr
{

/** The virtual-physical register renamer. */
class VirtualPhysicalRename : public RenameManager
{
  public:
    /** @param atIssue true = allocate at issue, false = at write-back. */
    VirtualPhysicalRename(const RenameConfig &config, bool atIssue);

    RenameScheme
    scheme() const override
    {
        return allocAtIssue ? RenameScheme::VPAllocAtIssue
                            : RenameScheme::VPAllocAtWriteback;
    }

    void tick(Cycle now) override;
    bool canRename(unsigned nIntDests, unsigned nFpDests) const override;
    void renameInst(DynInst &inst, Cycle now) override;
    bool tryIssue(DynInst &inst, Cycle now) override;
    CompleteResult complete(DynInst &inst, Cycle now) override;
    void commitInst(DynInst &inst, Cycle now) override;
    void squashInst(DynInst &inst, Cycle now) override;

    std::size_t freePhysRegs(RegClass cls) const override;
    void checkInvariants() const override;
    void reinit() override;
    void visitState(StateVisitor &v) override;

    /** GMT inspection (tests). @{ */
    VPRegId
    gmtVP(RegClass cls, std::uint16_t logical) const
    {
        return gmt[classIdx(cls)][logical].vp;
    }
    PhysRegId
    gmtPhys(RegClass cls, std::uint16_t logical) const
    {
        return gmt[classIdx(cls)][logical].p;
    }
    bool
    gmtValid(RegClass cls, std::uint16_t logical) const
    {
        return gmt[classIdx(cls)][logical].v;
    }
    /** @} */

    /** PMT inspection (tests): phys mapped to @p vp, or kNoReg. */
    std::uint16_t
    pmtPhys(RegClass cls, VPRegId vp) const
    {
        const auto &e = pmt[classIdx(cls)][vp];
        return e.valid ? e.phys : kNoReg;
    }

    /** Free virtual-physical registers right now. */
    std::size_t
    freeVPRegs(RegClass cls) const
    {
        return vpFreeList[classIdx(cls)].size();
    }

    /** Reservation state (tests/stats). */
    const ReservationTracker &
    reservation(RegClass cls) const
    {
        return tracker[classIdx(cls)];
    }

    /** Denied issue attempts under the issue-allocation policy. */
    std::uint64_t issueRejections() const { return nIssueRejections; }

  private:
    struct GmtEntry
    {
        VPRegId vp = 0;   ///< last VP mapping of this logical register
        PhysRegId p = 0;  ///< last physical mapping (valid iff v)
        bool v = false;   ///< V bit
    };

    struct PmtEntry
    {
        PhysRegId phys = 0;
        bool valid = false;
    };

    PhysRegId allocPhys(RegClass cls, InstSeqNum seq, Cycle now);
    void freePhysDelayed(RegClass cls, PhysRegId reg);
    void freePhysNow(RegClass cls, PhysRegId reg, Cycle now);

    bool allocAtIssue;

    std::vector<GmtEntry> gmt[kNumRegClasses];  ///< indexed by logical
    std::vector<PmtEntry> pmt[kNumRegClasses];  ///< indexed by VP reg
    std::vector<VPRegId> vpFreeList[kNumRegClasses];
    std::vector<PhysRegId> physFreeList[kNumRegClasses];
    ReservationTracker tracker[kNumRegClasses];

    /** Commit-time frees queued during this cycle; released by the next
     *  tick() — the paper's one-cycle PMT-lookup commit delay. */
    std::vector<PhysRegId> pendingFrees[kNumRegClasses];
    Cycle pendingFreeCycle = 0;   ///< cycle the pending frees were queued

    std::uint64_t nIssueRejections = 0;
};

} // namespace vpr

#endif // VPR_RENAME_VIRTUAL_PHYSICAL_HH
