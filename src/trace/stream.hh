/**
 * @file
 * Abstract trace stream plus the simple vector-backed implementation.
 */

#ifndef VPR_TRACE_STREAM_HH
#define VPR_TRACE_STREAM_HH

#include <optional>
#include <string>
#include <vector>

#include "common/state.hh"
#include "trace/record.hh"

namespace vpr
{

/**
 * A source of dynamic instructions. Streams must be deterministic:
 * reset() followed by repeated next() always yields the same sequence.
 */
class TraceStream
{
  public:
    virtual ~TraceStream() = default;

    /** @return the next record, or nullopt at end of trace. */
    virtual std::optional<TraceRecord> next() = 0;

    /** Rewind to the beginning of the trace. */
    virtual void reset() = 0;

    /**
     * Advance the stream position past @p n records without returning
     * them (sampled simulation's fast-forward with functional warming
     * disabled). @return the records actually skipped — less than @p n
     * only at end of trace. The default walks next(); streams with
     * random-access backing override with O(1) position arithmetic.
     */
    virtual std::size_t
    skip(std::size_t n)
    {
        std::size_t k = 0;
        while (k < n && next())
            ++k;
        return k;
    }

    /**
     * Fill @p out with up to @p max records, returning the count
     * (short only at end of trace). Yields exactly the sequence
     * repeated next() calls would — this is the bulk entry point for
     * fast-forward functional warming, where one virtual call per
     * instruction (plus the optional<> return) is the dominant cost.
     * The default loops next(); generators override it.
     */
    virtual std::size_t
    nextBatch(TraceRecord *out, std::size_t max)
    {
        std::size_t k = 0;
        while (k < max) {
            std::optional<TraceRecord> rec = next();
            if (!rec)
                break;
            out[k++] = *rec;
        }
        return k;
    }

    /**
     * Stable identity of the stream's *content* for checkpointing:
     * two streams with the same identity yield the same record
     * sequence from reset(). Empty (the default) marks a stream as not
     * checkpointable — the simulator silently falls back to cold runs.
     * Generators return their kernel name + seed.
     */
    virtual std::string identity() const { return {}; }

    /**
     * Serialize/restore the stream position (common/state.hh). Only
     * ever called on streams that advertise a non-empty identity() or
     * in tests that pair save and load on the same stream type; the
     * default carries no state.
     */
    virtual void visitState(StateVisitor &v) { v.section("stream"); }
};

/**
 * A trace held in memory. Optionally replays the sequence forever, which
 * turns a single loop body into an unbounded instruction stream.
 */
class VectorTraceStream : public TraceStream
{
  public:
    explicit VectorTraceStream(std::vector<TraceRecord> records,
                               bool loop = false)
        : recs(std::move(records)), looping(loop), pos(0)
    {}

    std::optional<TraceRecord>
    next() override
    {
        if (pos >= recs.size()) {
            if (!looping || recs.empty())
                return std::nullopt;
            pos = 0;
        }
        return recs[pos++];
    }

    void reset() override { pos = 0; }

    /** Identity stays empty (content is arbitrary caller data), but the
     *  position round-trips so tests can checkpoint vector-backed
     *  cores explicitly. */
    void
    visitState(StateVisitor &v) override
    {
        v.section("vecstream");
        v.value(pos);
    }

    std::size_t size() const { return recs.size(); }

  private:
    std::vector<TraceRecord> recs;
    bool looping;
    std::size_t pos;
};

} // namespace vpr

#endif // VPR_TRACE_STREAM_HH
