/**
 * @file
 * vpr_sim — command-line driver for single runs and declarative sweeps.
 *
 * Usage:
 *   vpr_sim [options] <benchmark | trace.vprt | all>
 *
 * The target "all" runs every built-in benchmark through the parallel
 * experiment engine and prints an IPC summary table (use --jobs).
 *
 * Every configuration parameter of the simulated machine is settable
 * by stable dotted name (run `vpr_sim --help-params` for the generated
 * reference, also checked in as docs/params.txt):
 *
 *   --set <key>=<value>   override one parameter (repeatable)
 *   --config=<file.json>  load a --dump-config dump first
 *   --dump-config         print the effective config as JSON and exit
 *   --help-params         print the parameter reference and exit
 *
 * Declarative sweeps replace bespoke experiment binaries: each --sweep
 * adds one axis, and the cross product (benchmarks outermost, then the
 * axes left to right, rightmost fastest) runs through the parallel
 * grid engine, e.g.
 *
 *   vpr_sim --sweep core.rename.regfile_size=48,64,96 \
 *           --sweep core.scheme=conv,vp-wb all
 *
 * reproduces the fig7_regfile_size grid cell for cell.
 *
 *   --sweep <key>=<v1,v2,...>  add one sweep axis (repeatable)
 *   --figure=<name>   label for exported records (merge_results
 *                     re-renders and provenance-checks registered names)
 *   --shard=i/N       run only slice i of the sweep grid (see README)
 *
 * Run control: --skip/--insts/--seed/--jobs, --out=<path> (one record
 * per run; CSV, .json, or compressed .vprz), --dump-trace=F,N, --list.
 * The classic flags --scheme/--regs/--nrr/--rob/--miss/--mshrs/
 * --wrongpath[-mem], --sampling (= sim.sampling.enable=1, SMARTS-style
 * sampled simulation) and --ckpt-dir=<dir> (= sim.ckpt.dir, warm-state
 * checkpoint cache; see README "Checkpoints & warm-start sweeps") are
 * thin aliases onto the dotted parameters above, as is
 * --result-cache=<dir> (= sim.result_cache.dir, the content-addressed
 * per-cell result cache shared with the vpr_simd daemon; see README
 * "Sweep service").
 */

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/params.hh"
#include "sim/results_io.hh"
#include "sim/sweep.hh"
#include "trace/kernels/kernels.hh"
#include "trace/trace_file.hh"

using namespace vpr;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [options] <benchmark | trace.vprt | all>\n"
                 "run '" << argv0 << " --list' for benchmarks, '"
              << argv0 << " --help-params' for every settable\n"
                 "parameter; see the file header for all options\n";
    std::exit(1);
}

bool
matchArg(const char *arg, const char *key, const char **value)
{
    std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        *value = arg + n + 1;
        return true;
    }
    return false;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

/** Print the per-cell summary of an unsharded sweep: benchmark, the
 *  swept values, and IPC, in cell order. */
void
printSweepTable(std::ostream &os, const std::vector<SweepAxis> &axes,
                const std::vector<GridCell> &cells,
                const std::vector<SimResults> &results)
{
    std::vector<std::size_t> widths;
    os << std::left << std::setw(6) << "cell" << std::setw(12)
       << "benchmark";
    for (const SweepAxis &axis : axes) {
        std::size_t w = axis.key.size();
        for (const std::string &v : axis.values)
            w = std::max(w, v.size());
        widths.push_back(w + 2);
        os << std::setw(static_cast<int>(w + 2)) << axis.key;
    }
    os << "ipc\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        os << std::left << std::setw(6) << i << std::setw(12)
           << cells[i].benchmark;
        SimConfig config = cells[i].config;
        ConfigRegistry registry(config);
        for (std::size_t a = 0; a < axes.size(); ++a)
            os << std::setw(static_cast<int>(widths[a]))
               << registry.get(axes[a].key);
        os << std::fixed << std::setprecision(3) << results[i].ipc()
           << "\n";
        os.unsetf(std::ios::fixed);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig config = paperConfig();
    config.skipInsts = 20000;
    config.measureInsts = 200000;
    config.core.fetch.wrongPath = WrongPathMode::Stall;

    std::string target;
    std::string nrrText;  // remembered so --regs/--rob can reapply it
    std::string dumpSpec;
    std::string outPath;
    std::string figure;
    std::vector<SweepAxis> axes;
    ShardSpec shard;
    ConfigCliArgs cli;

    // Legacy flags are thin aliases: they append the equivalent --set
    // assignment, so interleavings with --set keep command-line order
    // and the shared contract (--config loads first, --set wins) holds.
    auto alias = [&cli](const std::string &key, const std::string &value) {
        cli.assignments.push_back(key + "=" + value);
    };

    for (int i = 1; i < argc; ++i) {
        const char *v = nullptr;
        if (std::strcmp(argv[i], "--list") == 0) {
            for (const auto &info : benchmarkTable())
                std::cout << info.name << (info.isFp ? "  [fp] " : " [int] ")
                          << info.sketch << "\n";
            return 0;
        } else if (std::strcmp(argv[i], "--help-params") == 0) {
            printParamHelp(std::cout);
            return 0;
        } else if (parseConfigArg(argc, argv, i, cli)) {
            // --set / --set= / --config= / --dump-config taken.
        } else if (matchArg(argv[i], "--sweep", &v)) {
            axes.push_back(parseSweepAxis(v));
        } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
            axes.push_back(parseSweepAxis(argv[++i]));
        } else if (matchArg(argv[i], "--figure", &v)) {
            figure = v;
        } else if (matchArg(argv[i], "--shard", &v)) {
            shard = parseShard(v);
        } else if (std::strcmp(argv[i], "--sampling") == 0) {
            alias("sim.sampling.enable", "1");
        } else if (matchArg(argv[i], "--ckpt-dir", &v)) {
            alias("sim.ckpt.dir", v);
        } else if (matchArg(argv[i], "--result-cache", &v)) {
            alias("sim.result_cache.dir", v);
        } else if (std::strcmp(argv[i], "--wrongpath") == 0) {
            alias("core.fetch.wrong_path", "synthesize");
        } else if (std::strcmp(argv[i], "--wrongpath-mem") == 0) {
            alias("core.fetch.wrong_path", "synthesize");
            alias("core.fetch.wrong_path_mem", "1");
        } else if (matchArg(argv[i], "--out", &v)) {
            outPath = v;
        } else if (matchArg(argv[i], "--scheme", &v)) {
            alias("core.scheme", v);
        } else if (matchArg(argv[i], "--regs", &v)) {
            alias("core.rename.regfile_size", v);
            if (!nrrText.empty())
                alias("core.rename.nrr", nrrText);
        } else if (matchArg(argv[i], "--nrr", &v)) {
            nrrText = v;
            alias("core.rename.nrr", v);
        } else if (matchArg(argv[i], "--rob", &v)) {
            alias("core.window", v);
            if (!nrrText.empty())
                alias("core.rename.nrr", nrrText);
        } else if (matchArg(argv[i], "--skip", &v)) {
            alias("skip_insts", v);
        } else if (matchArg(argv[i], "--insts", &v)) {
            alias("measure_insts", v);
        } else if (matchArg(argv[i], "--miss", &v)) {
            alias("core.cache.miss_penalty", v);
        } else if (matchArg(argv[i], "--mshrs", &v)) {
            alias("core.cache.num_mshrs", v);
        } else if (matchArg(argv[i], "--seed", &v)) {
            alias("seed", v);
        } else if (matchArg(argv[i], "--jobs", &v)) {
            config.jobs = parseJobs(v);
        } else if (matchArg(argv[i], "--dump-trace", &v)) {
            dumpSpec = v;
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
        } else {
            target = argv[i];
        }
    }

    applyConfigCli(config, cli);
    if (cli.dumpConfig) {
        dumpConfig(std::cout, config);
        return 0;
    }
    if (target.empty())
        usage(argv[0]);

    if (!dumpSpec.empty()) {
        auto comma = dumpSpec.find(',');
        std::string file = dumpSpec.substr(0, comma);
        std::size_t n = comma == std::string::npos
            ? 100000
            : std::strtoull(dumpSpec.c_str() + comma + 1, nullptr, 10);
        auto stream = makeBenchmarkStream(target, config.seed);
        std::size_t written = writeTraceFile(file, *stream, n);
        std::cout << "wrote " << written << " records to " << file
                  << "\n";
        return 0;
    }

    if (!axes.empty()) {
        // Declarative sweep: cross product of benchmarks x axes through
        // the grid engine, sharded exactly like the bench binaries.
        if (endsWith(target, ".vprt")) {
            std::cerr << "--sweep needs a benchmark name or 'all', not "
                         "a trace file\n";
            return 1;
        }
        std::vector<std::string> benchmarks;
        if (target == "all")
            benchmarks = benchmarkNames();
        else
            benchmarks.push_back(target);

        const std::vector<GridCell> cells =
            buildSweepGrid(benchmarks, config, axes);
        const std::vector<std::size_t> indices =
            shardCellIndices(cells.size(), shard);
        const std::vector<GridCell> selected =
            selectCells(cells, indices);
        const std::vector<SimResults> results =
            runGrid(selected, config.jobs);

        if (figure.empty())
            figure = "vpr_sim-sweep";
        if (!outPath.empty())
            writeResultsFile(outPath, figure, shard, indices, cells,
                             results);

        if (shard.active()) {
            std::cout << "shard " << shard.index << "/" << shard.count
                      << ": ran " << selected.size() << " of "
                      << cells.size() << " sweep cells";
            if (!outPath.empty())
                std::cout << "; records written to " << outPath;
            else
                std::cout << " (no --out; records discarded)";
            std::cout << "\n";
            return 0;
        }
        printSweepTable(std::cout, axes, cells, results);
        return 0;
    }

    if (shard.active()) {
        std::cerr << "--shard only applies to --sweep runs\n";
        return 1;
    }

    // --out: one record per run. Every index of the run's grid is
    // exported (non-sweep vpr_sim runs never shard; the bench binaries
    // and --sweep do).
    auto exportRecords = [&outPath](const std::string &figureName,
                                    const std::vector<GridCell> &cells,
                                    const std::vector<SimResults> &results) {
        if (!outPath.empty())
            exportAllCells(outPath, figureName, cells, results);
    };

    if (target == "all") {
        // Sweep every benchmark on the parallel engine and summarize.
        std::vector<GridCell> cells;
        for (const auto &name : benchmarkNames())
            cells.push_back({name, config});
        std::vector<SimResults> results = runGrid(cells, config.jobs);
        exportRecords(figure.empty() ? "vpr_sim-all" : figure, cells,
                      results);

        printTableHeader(std::cout,
                         std::string("IPC, scheme=") +
                             renameSchemeName(config.core.scheme),
                         {"ipc", "exec/ci", "missrate"});
        std::vector<double> ipcs;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const SimResults &r = results[i];
            ipcs.push_back(r.ipc());
            printTableRow(std::cout, cells[i].benchmark,
                          {r.ipc(), r.executionsPerCommit(),
                           r.cacheMissRate()},
                          3);
        }
        std::cout << std::string(48, '-') << "\n";
        printTableRow(std::cout, "hmean", {harmonicMean(ipcs)}, 3);
        return 0;
    }

    if (figure.empty())
        figure = "vpr_sim";
    if (endsWith(target, ".vprt")) {
        FileTraceStream stream(target);
        // Finite trace: keep the warm-up from swallowing it whole.
        if (config.skipInsts >= stream.size() / 2)
            config.skipInsts = stream.size() / 10;
        Simulator sim(stream, config);
        SimResults r = sim.run();
        sim.printReport(std::cout, r);
        exportRecords(figure, {{target, config}}, {r});
    } else {
        Simulator sim(target, config);
        SimResults r = sim.run();
        sim.printReport(std::cout, r);
        exportRecords(figure, {{target, config}}, {r});
    }
    return 0;
}
