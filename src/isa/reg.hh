/**
 * @file
 * Logical (architectural) register identifiers.
 *
 * The simulated ISA has two register files, integer and floating point,
 * with 32 logical registers each — matching the paper's assumption of an
 * Alpha/MIPS-like ISA (NLR = 32 per class).
 */

#ifndef VPR_ISA_REG_HH
#define VPR_ISA_REG_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace vpr
{

/** Which register file a register belongs to. */
enum class RegClass : std::uint8_t { Int = 0, Float = 1 };

/** Number of register classes. */
inline constexpr std::size_t kNumRegClasses = 2;

/** Logical registers per class (fixed by the simulated ISA). */
inline constexpr std::uint16_t kNumLogicalRegs = 32;

/** Short name of a register class ("int"/"fp"). */
inline const char *
regClassName(RegClass cls)
{
    return cls == RegClass::Int ? "int" : "fp";
}

/** Index usable for per-class arrays. */
inline constexpr std::size_t
classIdx(RegClass cls)
{
    return static_cast<std::size_t>(cls);
}

/**
 * An architectural register reference: class + index, with a dedicated
 * "none" state for instructions lacking the operand.
 */
class RegId
{
  public:
    /** Construct the "no register" value. */
    constexpr RegId() : cls(RegClass::Int), idx(kInvalidIdx) {}

    constexpr RegId(RegClass c, std::uint16_t i) : cls(c), idx(i) {}

    /** Named constructors for readability at call sites. */
    static constexpr RegId intReg(std::uint16_t i)
    {
        return RegId(RegClass::Int, i);
    }
    static constexpr RegId fpReg(std::uint16_t i)
    {
        return RegId(RegClass::Float, i);
    }
    static constexpr RegId none() { return RegId(); }

    constexpr bool valid() const { return idx != kInvalidIdx; }
    constexpr RegClass regClass() const { return cls; }

    std::uint16_t
    index() const
    {
        VPR_ASSERT(valid(), "index() on invalid RegId");
        return idx;
    }

    constexpr bool
    operator==(const RegId &o) const
    {
        return idx == o.idx && (idx == kInvalidIdx || cls == o.cls);
    }
    constexpr bool operator!=(const RegId &o) const { return !(*this == o); }

    /** Human-readable name, e.g.\ "r7", "f12" or "-". */
    std::string
    str() const
    {
        if (!valid())
            return "-";
        return (cls == RegClass::Int ? "r" : "f") + std::to_string(idx);
    }

  private:
    static constexpr std::uint16_t kInvalidIdx = 0xffff;

    RegClass cls;
    std::uint16_t idx;
};

} // namespace vpr

#endif // VPR_ISA_REG_HH
