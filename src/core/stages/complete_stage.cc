#include "core/stages/complete_stage.hh"

#include "common/logging.hh"
#include "isa/op_class.hh"

namespace vpr
{

CompleteStage::CompleteStage(PipelineState &state,
                             CompletionQueue &completionQueue,
                             FetchRedirectPort &redirectPort,
                             SquashCoordinator &squashCoordinator)
    : s(state), completions(completionQueue), redirect(redirectPort),
      squasher(squashCoordinator)
{
    group.add(&wbRejections);
    issueToComplete.reserve(kNumOpClasses);
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
        issueToComplete.push_back(stats::Distribution::evenBuckets(
            std::string("issue_to_complete.") +
                opClassName(static_cast<OpClass>(i)),
            "cycles from issue to completion", 0, 64, 16));
        group.add(&issueToComplete.back());
    }
    s.statsTree.add(&group);
}

void
CompleteStage::tick()
{
    const Cycle now = s.curCycle;

    while (completions.hasDue(now)) {
        CompletionEvent ev = completions.popDue();
        VPR_ASSERT(ev.when == now, "completion event missed: when=",
                   ev.when, " now=", now);

        // Stale events: the instruction was squashed (slot possibly
        // reused by a younger instruction). The check reads only the
        // packed hot arrays via the recorded slot.
        if (!s.hot.liveInPhase(ev.slot, ev.seq, InstPhase::Issued))
            continue;
        DynInst *inst = ev.inst;

        CompleteResult res = s.renameMgr->complete(*inst, now);
        if (!res.ok) {
            // VP write-back allocation denied a register: squash back
            // to the instruction queue and re-execute (paper §3.3).
            ++wbRejections;
            inst->setPhase(InstPhase::Renamed);
            s.iq.insert(inst);
            continue;
        }

        inst->setPhase(InstPhase::Completed);
        inst->setCompleteCycle(now);
        issueToComplete[static_cast<std::size_t>(inst->si.op)].sample(
            now - inst->issueCycle());

        if (inst->hasDest()) {
            VPR_ASSERT(inst->physReg != kNoReg,
                       "completed without a physical register");
            s.iq.wakeup(inst->destClass(), inst->wakeupTag,
                        inst->physReg);
            // Issued stores parked on their data operand listen too.
            for (auto &ref : completions.parkedStores()) {
                if (!s.hot.live(ref.slot, ref.seq))
                    continue;
                auto &src = ref.inst->src[0];
                if (src.valid && !src.ready &&
                    src.cls == inst->destClass() &&
                    src.tag == inst->wakeupTag) {
                    src.tag = inst->physReg;
                    src.ready = true;
                }
            }
        }

        if (inst->mispredictedBranch) {
            // Branch resolution: recovery walk + fetch redirect.
            squasher.squashYoungerThan(inst->seq());
            redirect.redirect(now);
        }
    }

    // Stores whose data arrived (possibly via this cycle's broadcasts)
    // complete now that both address and data are known.
    auto &parked = completions.parkedStores();
    std::size_t keep = 0;
    for (auto &ref : parked) {
        if (!s.hot.liveInPhase(ref.slot, ref.seq, InstPhase::Issued))
            continue;  // squashed
        DynInst *inst = ref.inst;
        if (inst->operandsReady()) {
            Cycle when = now + 1 > inst->addrReadyCycle
                ? now + 1
                : inst->addrReadyCycle;
            completions.schedule(when, ref.seq, inst);
        } else {
            parked[keep++] = ref;
        }
    }
    parked.resize(keep);
}

} // namespace vpr
