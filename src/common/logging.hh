/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits(1).
 * warn()   — something questionable happened but simulation continues.
 * inform() — neutral status output.
 */

#ifndef VPR_COMMON_LOGGING_HH
#define VPR_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace vpr
{

/** Terminate with an "internal bug" diagnostic (calls std::abort). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a "user error" diagnostic (calls std::exit(1)). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr; simulation continues. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

namespace detail
{

/** Concatenate a heterogeneous argument pack via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail
} // namespace vpr

#define VPR_PANIC(...) \
    ::vpr::panicImpl(__FILE__, __LINE__, ::vpr::detail::concat(__VA_ARGS__))

#define VPR_FATAL(...) \
    ::vpr::fatalImpl(__FILE__, __LINE__, ::vpr::detail::concat(__VA_ARGS__))

#define VPR_WARN(...) \
    ::vpr::warnImpl(__FILE__, __LINE__, ::vpr::detail::concat(__VA_ARGS__))

#define VPR_INFORM(...) \
    ::vpr::informImpl(::vpr::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define VPR_ASSERT(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            VPR_PANIC("assertion failed: " #cond                          \
                      " " __VA_OPT__(,) __VA_ARGS__);                     \
        }                                                                 \
    } while (0)

#endif // VPR_COMMON_LOGGING_HH
