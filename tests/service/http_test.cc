/**
 * @file
 * The portable HTTP layer, end to end over a real loopback socket: an
 * ephemeral-port server in a background thread, the blocking client
 * against it. Covers request/response round trips (body, status,
 * content type), protocol-error handling (malformed request line =
 * 400 without reaching the handler), and clean shutdown.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/http.hh"

namespace vpr::service
{
namespace
{

/** Raw exchange: send @p wire verbatim, return everything until EOF
 *  (for protocol-level cases the structured client cannot produce). */
std::string
rawExchange(std::uint16_t port, const std::string &wire)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    (void)!::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
    std::string back;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        back.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return back;
}

TEST(Http, RoundTripAndShutdown)
{
    HttpServer server;
    std::string error;
    ASSERT_TRUE(server.bindAndListen("127.0.0.1", 0, error)) << error;
    ASSERT_NE(server.port(), 0);

    std::thread serverThread([&] {
        server.serve([&](const HttpRequest &request) {
            HttpResponse response;
            if (request.path == "/quit") {
                server.requestStop();
                response.body = "bye";
                return response;
            }
            response.status = request.path == "/echo" ? 200 : 404;
            response.contentType = "text/x-echo";
            response.body = request.method + " " + request.path + " [" +
                            request.body + "]";
            return response;
        });
    });

    HttpResponse response;
    ASSERT_TRUE(httpRequest("127.0.0.1", server.port(), "POST", "/echo",
                            "hello body", response, error))
        << error;
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "POST /echo [hello body]");

    // Non-200 statuses still complete the exchange (caller sees them).
    ASSERT_TRUE(httpRequest("127.0.0.1", server.port(), "GET", "/miss",
                            "", response, error))
        << error;
    EXPECT_EQ(response.status, 404);

    // An empty body round-trips (Content-Length: 0).
    ASSERT_TRUE(httpRequest("127.0.0.1", server.port(), "GET", "/echo",
                            "", response, error))
        << error;
    EXPECT_EQ(response.body, "GET /echo []");

    // A malformed request line is answered 400 by the server itself.
    const std::string raw =
        rawExchange(server.port(), "NONSENSE\r\n\r\n");
    EXPECT_EQ(raw.compare(0, 17, "HTTP/1.1 400 Bad "), 0) << raw;

    // Binary-safe bodies (NUL bytes survive Content-Length framing).
    const std::string binary("a\0b\r\n\r\nc", 8);
    ASSERT_TRUE(httpRequest("127.0.0.1", server.port(), "POST", "/echo",
                            binary, response, error))
        << error;
    EXPECT_EQ(response.body, "POST /echo [" + binary + "]");

    ASSERT_TRUE(httpRequest("127.0.0.1", server.port(), "POST", "/quit",
                            "", response, error))
        << error;
    EXPECT_EQ(response.body, "bye");
    serverThread.join();
}

TEST(Http, ConnectFailureIsCleanError)
{
    // Nothing listens on the discard port on this host.
    HttpResponse response;
    std::string error;
    EXPECT_FALSE(
        httpRequest("127.0.0.1", 9, "GET", "/", "", response, error));
    EXPECT_FALSE(error.empty());
}

TEST(Http, ReasonPhrases)
{
    EXPECT_STREQ(httpReason(200), "OK");
    EXPECT_STREQ(httpReason(400), "Bad Request");
    EXPECT_STREQ(httpReason(404), "Not Found");
    EXPECT_STREQ(httpReason(405), "Method Not Allowed");
    EXPECT_STREQ(httpReason(500), "Internal Server Error");
    EXPECT_STREQ(httpReason(999), "Unknown");
}

} // namespace
} // namespace vpr::service
