/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace vpr::stats
{
namespace
{

TEST(Scalar, CountsAndResets)
{
    Scalar s("s", "a counter");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 6u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Scalar, SetOverwrites)
{
    Scalar s("s", "gauge");
    s.set(42);
    EXPECT_EQ(s.value(), 42u);
}

TEST(Average, MeanOfSamples)
{
    Average a("a", "mean");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 6.0);
}

TEST(Distribution, BucketsSamples)
{
    Distribution d("d", "dist", 0, 99, 10);
    EXPECT_EQ(d.numBuckets(), 10u);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(95);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
    EXPECT_EQ(d.bucketCount(9), 1u);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), (5 + 15 + 15 + 95) / 4.0);
}

TEST(Distribution, UnderOverflow)
{
    Distribution d("d", "dist", 10, 19, 5);
    d.sample(9);
    d.sample(25);
    d.sample(12);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_EQ(d.minSample(), 9u);
    EXPECT_EQ(d.maxSample(), 25u);
}

TEST(Distribution, ResetClearsEverything)
{
    Distribution d("d", "dist", 0, 9, 1);
    d.sample(3);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.bucketCount(3), 0u);
}

TEST(StatGroup, PrintsAllMembers)
{
    StatGroup g("grp");
    Scalar s("grp.count", "counts things");
    Average a("grp.avg", "averages things");
    g.add(&s);
    g.add(&a);
    ++s;
    a.sample(4.0);

    std::ostringstream os;
    g.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("grp.count"), std::string::npos);
    EXPECT_NE(out.find("grp.avg"), std::string::npos);
    EXPECT_NE(out.find("counts things"), std::string::npos);
}

TEST(StatGroup, ResetAllResetsMembers)
{
    StatGroup g("grp");
    Scalar s("s", "d");
    g.add(&s);
    s += 10;
    g.resetAll();
    EXPECT_EQ(s.value(), 0u);
}

TEST(DistributionDeath, BadRangePanics)
{
    EXPECT_DEATH(Distribution("d", "x", 10, 5, 1), "range inverted");
    EXPECT_DEATH(Distribution("d", "x", 0, 5, 0), "bucket size");
}

/** Collects visited triples as "name=value" strings, in order. */
class RecordingVisitor : public StatVisitor
{
  public:
    void
    visitUInt(const std::string &name, const std::string &desc,
              std::uint64_t v) override
    {
        entries.push_back(name + "=" + std::to_string(v));
        descs.push_back(desc);
    }

    void
    visitReal(const std::string &name, const std::string &desc,
              double v) override
    {
        std::ostringstream os;
        os << name << "=" << v;
        entries.push_back(os.str());
        descs.push_back(desc);
    }

    std::vector<std::string> entries;
    std::vector<std::string> descs;
};

TEST(Visitation, ScalarVisitsItsValue)
{
    Scalar s("count", "how many");
    s += 7;
    RecordingVisitor v;
    s.visit(v);
    ASSERT_EQ(v.entries.size(), 1u);
    EXPECT_EQ(v.entries[0], "count=7");
    EXPECT_EQ(v.descs[0], "how many");
}

TEST(Visitation, RealVisitsItsValue)
{
    Real r("rate", "a ratio");
    r.set(0.5);
    RecordingVisitor v;
    r.visit(v);
    ASSERT_EQ(v.entries.size(), 1u);
    EXPECT_EQ(v.entries[0], "rate=0.5");
}

TEST(Visitation, AverageVisitsMeanAndSamples)
{
    Average a("lat", "latency");
    a.sample(2.0);
    a.sample(4.0);
    RecordingVisitor v;
    a.visit(v);
    ASSERT_EQ(v.entries.size(), 2u);
    EXPECT_EQ(v.entries[0], "lat=3");
    EXPECT_EQ(v.entries[1], "lat.samples=2");
}

TEST(Visitation, DistributionVisitsSubValues)
{
    Distribution d("occ", "occupancy", 0, 9, 1);
    d.sample(2);
    d.sample(4);
    RecordingVisitor v;
    d.visit(v);
    ASSERT_EQ(v.entries.size(), 6u);
    EXPECT_EQ(v.entries[0], "occ.mean=3");
    EXPECT_EQ(v.entries[1], "occ.samples=2");
    EXPECT_EQ(v.entries[2], "occ.min=2");
    EXPECT_EQ(v.entries[3], "occ.max=4");
    EXPECT_EQ(v.entries[4], "occ.underflows=0");
    EXPECT_EQ(v.entries[5], "occ.overflows=0");
}

TEST(Visitation, GroupPrefixesAndPreservesOrder)
{
    StatGroup g("core");
    Scalar s1("cycles", "c");
    Scalar s2("committed", "i");
    Real r("ipc", "rate");
    g.add(&s1);
    g.add(&s2);
    g.add(&r);
    s1.set(10);
    s2.set(20);
    r.set(2.0);

    RecordingVisitor v;
    g.visit(v);
    ASSERT_EQ(v.entries.size(), 3u);
    EXPECT_EQ(v.entries[0], "core.cycles=10");
    EXPECT_EQ(v.entries[1], "core.committed=20");
    EXPECT_EQ(v.entries[2], "core.ipc=2");
}

} // namespace
} // namespace vpr::stats
