/**
 * @file
 * Packed hot state of in-flight instructions.
 *
 * The cycle loop's staleness checks and the commit/complete walks read a
 * handful of scalars per instruction — lifecycle phase, sequence number,
 * scheduler-residency flags, the pipeline cycle stamps — and nothing
 * else. Keeping those inside DynInst means every check drags a whole
 * ~150-byte instruction record into the cache to read one byte.
 *
 * InstHotPool splits that state into parallel arrays indexed by ROB
 * slot (a HotIdx handle): 128 in-flight instructions fit their phases
 * in two cache lines and their sequence numbers in sixteen, so the hot
 * walks touch dense, L1-resident memory. Scheduler records (ReadyRef,
 * CompletionQueue events, IQ wait-list entries) carry the handle so a
 * staleness check never touches the DynInst at all; DynInst keeps the
 * cold rename/ISA fields plus accessors that forward here, so call
 * sites stay readable.
 *
 * Slot reuse: a ROB slot freed by the recovery walk is handed to a
 * younger instruction. Rob::allocate() calls reset() on the slot, which
 * reinitialises *every* array element — the lazy-staleness idiom
 * (recorded seq != pool seq) depends on it.
 */

#ifndef VPR_CORE_INST_HOT_HH
#define VPR_CORE_INST_HOT_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hh"

namespace vpr
{

/** Lifecycle phase of a dynamic instruction. */
enum class InstPhase : std::uint8_t
{
    Renamed,    ///< dispatched to IQ/ROB, waiting for operands
    Issued,     ///< executing on a functional unit
    Completed,  ///< result produced (and register allocated, if any)
    Committed,  ///< retired
    Squashed    ///< removed by branch recovery (slot may be reused)
};

/** Why a load cannot begin its memory access yet (LSQ disambiguation).
 *  Lives here rather than in lsq.hh because each load carries its most
 *  recent hold state in the hot pool. */
enum class LoadHold : std::uint8_t
{
    Ready,          ///< may access the cache
    Forward,        ///< older matching store will forward its data
    UnknownAddress, ///< an older store's address is not known yet
    PartialOverlap  ///< overlaps an older store but cannot forward
};

/** Handle of one in-flight instruction's hot-state row (its ROB slot). */
using HotIdx = std::uint32_t;

/** Sentinel for "not bound to a pool row". */
inline constexpr HotIdx kNoHotIdx =
    std::numeric_limits<std::uint32_t>::max();

/** The packed per-slot hot state (structure-of-arrays). */
class InstHotPool
{
  public:
    explicit InstHotPool(std::size_t capacity)
        : seqA(capacity), phaseA(capacity), lastHoldA(capacity),
          inIqA(capacity), inReadyQA(capacity), fetchA(capacity),
          renameA(capacity), issueA(capacity), completeA(capacity),
          commitA(capacity)
    {
        for (HotIdx i = 0; i < capacity; ++i)
            reset(i);
    }

    std::size_t capacity() const { return seqA.size(); }

    /** Fully reinitialise one slot (allocation / slot reuse). */
    void
    reset(HotIdx i)
    {
        seqA[i] = 0;
        phaseA[i] = static_cast<std::uint8_t>(InstPhase::Renamed);
        lastHoldA[i] = static_cast<std::uint8_t>(LoadHold::Ready);
        inIqA[i] = 0;
        inReadyQA[i] = 0;
        fetchA[i] = kNoCycle;
        renameA[i] = kNoCycle;
        issueA[i] = kNoCycle;
        completeA[i] = kNoCycle;
        commitA[i] = kNoCycle;
    }

    /** Reinitialise every slot, as construction does (simulator reuse
     *  between grid cells). */
    void
    resetAll()
    {
        for (std::size_t i = 0; i < capacity(); ++i)
            reset(static_cast<HotIdx>(i));
    }

    /** Field accessors (hot loops may also index the arrays directly
     *  through these; everything is inline, no bounds checks). @{ */
    InstSeqNum seqOf(HotIdx i) const { return seqA[i]; }
    void setSeq(HotIdx i, InstSeqNum s) { seqA[i] = s; }

    InstPhase
    phaseOf(HotIdx i) const
    {
        return static_cast<InstPhase>(phaseA[i]);
    }
    void
    setPhase(HotIdx i, InstPhase p)
    {
        phaseA[i] = static_cast<std::uint8_t>(p);
    }

    LoadHold
    lastHoldOf(HotIdx i) const
    {
        return static_cast<LoadHold>(lastHoldA[i]);
    }
    void
    setLastHold(HotIdx i, LoadHold h)
    {
        lastHoldA[i] = static_cast<std::uint8_t>(h);
    }

    bool isInIq(HotIdx i) const { return inIqA[i] != 0; }
    void setInIq(HotIdx i, bool b) { inIqA[i] = b ? 1 : 0; }

    bool isInReadyQ(HotIdx i) const { return inReadyQA[i] != 0; }
    void setInReadyQ(HotIdx i, bool b) { inReadyQA[i] = b ? 1 : 0; }

    Cycle fetchCycleOf(HotIdx i) const { return fetchA[i]; }
    void setFetchCycle(HotIdx i, Cycle c) { fetchA[i] = c; }
    Cycle renameCycleOf(HotIdx i) const { return renameA[i]; }
    void setRenameCycle(HotIdx i, Cycle c) { renameA[i] = c; }
    Cycle issueCycleOf(HotIdx i) const { return issueA[i]; }
    void setIssueCycle(HotIdx i, Cycle c) { issueA[i] = c; }
    Cycle completeCycleOf(HotIdx i) const { return completeA[i]; }
    void setCompleteCycle(HotIdx i, Cycle c) { completeA[i] = c; }
    Cycle commitCycleOf(HotIdx i) const { return commitA[i]; }
    void setCommitCycle(HotIdx i, Cycle c) { commitA[i] = c; }
    /** @} */

    /** The lazy-staleness check: does slot @p i still hold the
     *  instruction that recorded @p seq? (A reused slot fails this
     *  because reset() zeroes the sequence number and real sequence
     *  numbers start at 1.) */
    bool live(HotIdx i, InstSeqNum seq) const { return seqA[i] == seq; }

    /** live() plus a phase requirement — the common two-field check of
     *  the completion and issue paths, touching only packed arrays. */
    bool
    liveInPhase(HotIdx i, InstSeqNum seq, InstPhase p) const
    {
        return seqA[i] == seq &&
               phaseA[i] == static_cast<std::uint8_t>(p);
    }

  private:
    std::vector<InstSeqNum> seqA;
    std::vector<std::uint8_t> phaseA;
    std::vector<std::uint8_t> lastHoldA;
    std::vector<std::uint8_t> inIqA;
    std::vector<std::uint8_t> inReadyQA;
    std::vector<Cycle> fetchA;
    std::vector<Cycle> renameA;
    std::vector<Cycle> issueA;
    std::vector<Cycle> completeA;
    std::vector<Cycle> commitA;
};

} // namespace vpr

#endif // VPR_CORE_INST_HOT_HH
