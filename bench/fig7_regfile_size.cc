/**
 * @file
 * Figure 7 of the paper: IPC of the conventional and virtual-physical
 * organizations (write-back allocation, NRR = NPR - 32) for register
 * files of 48, 64 and 96 physical registers, plus the paper's register
 * saving observation (VP at 48 regs ≈ conventional at 64).
 */

#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);

    SimConfig config = experimentConfig();
    const std::vector<std::uint16_t> sizes = {48, 64, 96};

    std::vector<std::string> cols;
    for (auto s : sizes) {
        cols.push_back("conv(" + std::to_string(s) + ")");
        cols.push_back("virt(" + std::to_string(s) + ")");
    }
    printTableHeader(std::cout,
                     "Figure 7: IPC for 48/64/96 physical registers "
                     "(VP: write-back alloc, NRR = NPR-32)",
                     cols);

    // Grid: (conv, vp) per (benchmark × size), run on the engine.
    const auto &names = benchmarkNames();
    std::vector<GridCell> cells;
    for (const auto &name : names) {
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            config.setPhysRegs(sizes[i]);  // NRR = max = NPR - 32
            config.setScheme(RenameScheme::Conventional);
            cells.push_back({name, config});
            config.setScheme(RenameScheme::VPAllocAtWriteback);
            cells.push_back({name, config});
        }
    }
    std::vector<SimResults> results = runGrid(cells, config.jobs);

    std::vector<std::vector<double>> convI(sizes.size()),
        vpI(sizes.size());
    for (std::size_t bi = 0; bi < names.size(); ++bi) {
        std::vector<double> row;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            double c = results[2 * (bi * sizes.size() + i)].ipc();
            double v = results[2 * (bi * sizes.size() + i) + 1].ipc();
            row.push_back(c);
            row.push_back(v);
            convI[i].push_back(c);
            vpI[i].push_back(v);
        }
        printTableRow(std::cout, names[bi], row, 2);
    }

    std::cout << std::string(12 + 12 * cols.size(), '-') << "\n";
    std::vector<double> hm;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        hm.push_back(harmonicMean(convI[i]));
        hm.push_back(harmonicMean(vpI[i]));
    }
    printTableRow(std::cout, "hmean", hm, 2);

    std::cout << "\nimprovement by size:";
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::cout << "  " << sizes[i] << " regs: "
                  << static_cast<int>(
                         (hm[2 * i + 1] / hm[2 * i] - 1.0) * 100.0 + 0.5)
                  << "%";
    }
    std::cout << "\nregister saving check: virt(48) hmean = "
              << hm[1] << " vs conv(64) hmean = " << hm[2] << "\n";
    std::cout << "\npaper reference: +31% / +19% / +8% for 48/64/96 "
                 "registers; virt(48) IPC 1.17 ~ conv(64) IPC 1.23 — a "
                 "25% register saving at equal performance.\n";
    return 0;
}
