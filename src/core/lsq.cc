#include "core/lsq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vpr
{

Addr
Lsq::firstLine(const DynInst *m)
{
    return m->si.effAddr >> kLineShift;
}

Addr
Lsq::lastLine(const DynInst *m)
{
    return (m->si.effAddr + m->si.memSize - 1) >> kLineShift;
}

void
Lsq::insert(DynInst *inst)
{
    VPR_ASSERT(!full(), "insert into full LSQ");
    VPR_ASSERT(inst->isMem(), "non-memory instruction in LSQ");
    VPR_ASSERT(list.empty() || list.back()->seq() < inst->seq(),
               "LSQ insert out of program order");
    list.push_back(inst);
    // A store enters with its address unknown; program order keeps the
    // unknown list seq-sorted by construction.
    if (inst->isStore())
        unknownStores.push_back(inst->ref());
}

void
Lsq::eraseUnknown(InstSeqNum seq)
{
    auto it = std::lower_bound(
        unknownStores.begin(), unknownStores.end(), seq,
        [](const ReadyRef &r, InstSeqNum s) { return r.seq < s; });
    if (it != unknownStores.end() && it->seq == seq)
        unknownStores.erase(it);
}

void
Lsq::flushKnown(Cycle now)
{
    // Address visibility cycles are handed in nondecreasing order
    // (issue assigns now + 1 with a monotonic clock), so the pending
    // list is a FIFO.
    while (!pendingKnown.empty() && pendingKnown.front().second <= now) {
        eraseUnknown(pendingKnown.front().first);
        pendingKnown.pop_front();
    }
}

void
Lsq::eraseLineEntries(DynInst *store)
{
    if (!store->addrReady)
        return;  // never indexed
    for (Addr l = firstLine(store); l <= lastLine(store); ++l) {
        auto it = lineTable.find(l);
        if (it == lineTable.end())
            continue;
        auto &bucket = it->second;
        bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                    [store](const ReadyRef &r) {
                                        return r.inst == store;
                                    }),
                     bucket.end());
        if (bucket.empty())
            lineTable.erase(it);
    }
}

void
Lsq::releaseSubs(InstSeqNum seq, Cycle wake)
{
    auto it = holdSubs.find(seq);
    if (it == holdSubs.end())
        return;
    for (const ReadyRef &r : it->second)
        pendingRelease.push_back({r.inst, r.seq, r.slot, wake});
    holdSubs.erase(it);
}

void
Lsq::onStoreAddrComputed(DynInst *inst)
{
    VPR_ASSERT(inst->isStore() && inst->addrReady,
               "address-computed hook without a computed address");
    for (Addr l = firstLine(inst); l <= lastLine(inst); ++l)
        lineTable[l].push_back(inst->ref());
    // The address is visible from addrReadyCycle on; until then the
    // store still counts as unknown (checked lazily against the cycle),
    // and the unknown-list entry is flushed once the cycle passes. The
    // flush relies on visibility cycles arriving in nondecreasing order
    // (issue assigns now + 1 with a monotonic clock).
    VPR_ASSERT(pendingKnown.empty() ||
                   pendingKnown.back().second <= inst->addrReadyCycle,
               "store address visibility cycles must be monotone");
    pendingKnown.push_back({inst->seq(), inst->addrReadyCycle});
    releaseSubs(inst->seq(), inst->addrReadyCycle);
}

void
Lsq::subscribeHold(DynInst *load, const DynInst *blocker, LoadHold hold)
{
    VPR_ASSERT(blocker && blocker->isStore(),
               "hold subscription without a blocking store");
    VPR_ASSERT(hold == LoadHold::UnknownAddress ||
                   hold == LoadHold::PartialOverlap,
               "subscribing a load that is not held");
    if (hold == LoadHold::UnknownAddress && blocker->addrReady) {
        // The blocker computed its address earlier this cycle, so its
        // release event already fired; park directly on the pending
        // list, due when the address becomes visible.
        pendingRelease.push_back(
            {load, load->seq(), load->slot, blocker->addrReadyCycle});
        return;
    }
    // UnknownAddress releases at address computation, PartialOverlap at
    // the blocker's commit (remove) — both via the blocker's seq.
    holdSubs[blocker->seq()].push_back(load->ref());
}

void
Lsq::takeReadyHolds(Cycle now, std::vector<ReadyRef> &out)
{
    std::size_t keep = 0;
    for (const HoldRelease &r : pendingRelease) {
        if (r.wake <= now)
            out.emplace_back(r.inst, r.seq, r.slot);
        else
            pendingRelease[keep++] = r;
    }
    pendingRelease.resize(keep);
}

void
Lsq::remove(DynInst *inst)
{
    auto it = std::find(list.begin(), list.end(), inst);
    VPR_ASSERT(it != list.end(), "LSQ remove: entry not present");
    list.erase(it);
    if (inst->isStore()) {
        eraseLineEntries(inst);
        eraseUnknown(inst->seq());
        // Commit ticks before issue, so loads held on this store may
        // re-attempt this very cycle — as the legacy re-scan would.
        releaseSubs(inst->seq(), 0);
    }
}

void
Lsq::squashYoungerThan(InstSeqNum seq)
{
    while (!list.empty() && list.back()->seq() > seq) {
        DynInst *inst = list.back();
        if (inst->isStore()) {
            eraseLineEntries(inst);
            eraseUnknown(inst->seq());
            // Subscribers are younger than their blocker: all squashed
            // with it, so the subscriptions die outright.
            holdSubs.erase(inst->seq());
        }
        list.pop_back();
    }
}

void
Lsq::clear()
{
    list.clear();
    lineTable.clear();
    unknownStores.clear();
    pendingKnown.clear();
    holdSubs.clear();
    pendingRelease.clear();
}

LoadCheck
Lsq::scanCheck(const DynInst *load, Cycle now) const
{
    // Walk older entries from youngest to oldest so the *nearest*
    // matching store decides forwarding.
    for (auto it = list.rbegin(); it != list.rend(); ++it) {
        const DynInst *other = *it;
        if (other->seq() >= load->seq())
            continue;
        if (!other->isStore())
            continue;
        if (!other->addrReady || other->addrReadyCycle > now)
            return {LoadHold::UnknownAddress, other};
        if (!overlap(other->si.effAddr, other->si.memSize,
                     load->si.effAddr, load->si.memSize))
            continue;
        // Containing store with the data available: forward.
        if (other->si.effAddr <= load->si.effAddr &&
            other->si.effAddr + other->si.memSize >=
                load->si.effAddr + load->si.memSize) {
            return {LoadHold::Forward, other};
        }
        return {LoadHold::PartialOverlap, other};
    }
    return {LoadHold::Ready, nullptr};
}

LoadCheck
Lsq::disambiguate(const DynInst *load, Cycle now)
{
    VPR_ASSERT(load->isLoad(), "checkLoad on non-load");
    if (scanDisambig)
        return scanCheck(load, now);

    flushKnown(now);

    // Youngest older store whose address is still unknown at `now` (the
    // unknown-address watermark). Entries whose visibility cycle has
    // not passed yet are still pending in the FIFO, hence the lazy
    // cycle check.
    const DynInst *unknown = nullptr;
    InstSeqNum unknownSeq = 0;
    for (auto it = unknownStores.rbegin(); it != unknownStores.rend();
         ++it) {
        if (it->seq >= load->seq())
            continue;
        const DynInst *st = it->inst;
        if (st->addrReady && st->addrReadyCycle <= now)
            continue;  // visible now; flush is still pending
        unknown = st;
        unknownSeq = it->seq;
        break;
    }

    // Youngest older store with a visible overlapping address, found
    // through the line table (an access touches at most two lines).
    const DynInst *ovl = nullptr;
    InstSeqNum ovlSeq = 0;
    for (Addr l = firstLine(load); l <= lastLine(load); ++l) {
        auto it = lineTable.find(l);
        if (it == lineTable.end())
            continue;
        for (const ReadyRef &ref : it->second) {
            if (ref.seq >= load->seq())
                continue;
            if (ovl && ref.seq <= ovlSeq)
                continue;  // already have a younger candidate
            const DynInst *st = ref.inst;
            if (!st->addrReady || st->addrReadyCycle > now)
                continue;  // counts as unknown, handled above
            if (!overlap(st->si.effAddr, st->si.memSize,
                         load->si.effAddr, load->si.memSize))
                continue;
            ovl = st;
            ovlSeq = ref.seq;
        }
    }

    // The *youngest* decisive store wins, exactly as the reverse scan
    // encounters it first.
    if (!unknown && !ovl)
        return {LoadHold::Ready, nullptr};
    if (unknown && (!ovl || unknownSeq > ovlSeq))
        return {LoadHold::UnknownAddress, unknown};
    if (ovl->si.effAddr <= load->si.effAddr &&
        ovl->si.effAddr + ovl->si.memSize >=
            load->si.effAddr + load->si.memSize) {
        return {LoadHold::Forward, ovl};
    }
    return {LoadHold::PartialOverlap, ovl};
}

void
Lsq::recordHold(LoadHold h)
{
    switch (h) {
      case LoadHold::Forward:
        ++nForwards;
        break;
      case LoadHold::UnknownAddress:
        ++nUnknownHolds;
        break;
      case LoadHold::PartialOverlap:
        ++nPartialHolds;
        break;
      default:
        break;
    }
}

} // namespace vpr
