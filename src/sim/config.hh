/**
 * @file
 * Simulation-level configuration: the core configuration plus run
 * control (benchmark selection, warm-up, instruction budget).
 */

#ifndef VPR_SIM_CONFIG_HH
#define VPR_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "core/core.hh"

namespace vpr
{

class ParamVisitor;

/**
 * SMARTS-style statistical sampling (sim.sampling.*). When enabled,
 * the measurement budget is split into periods of @ref periodInsts
 * instructions; each period fast-forwards through a functional-warming
 * phase, runs @ref warmupInsts detailed-but-unmeasured instructions to
 * re-warm the short-lived pipeline state, then measures
 * @ref detailedInsts instructions. The per-interval IPC observations
 * feed the core.ipc.sampled.{mean,stderr,ci95,intervals} estimator.
 */
struct SamplingConfig
{
    /** Master switch; off by default so full runs are unchanged. */
    bool enable = false;

    /** Instructions per sampling period (fast-forward + warm-up +
     *  detailed). measure_insts / period_insts = interval count. */
    std::uint64_t periodInsts = 20000;

    /** Detailed-but-unmeasured instructions before each measurement.
     *  With functional warming on, the only state fast-forward cannot
     *  restore is pipeline occupancy, so the default just covers
     *  refilling the 128-entry ROB with some slack. */
    std::uint64_t warmupInsts = 150;

    /** Measured detailed instructions per period. */
    std::uint64_t detailedInsts = 250;

    /** Functional warming during fast-forward: caches and the BHT
     *  observe every skipped access. Disabling reduces fast-forward to
     *  a bare trace skip (cold-state sampling; cheaper, biased). */
    bool functionalWarming = true;

    /** Reflect the sampling parameters (sim/params.hh). */
    void visitParams(ParamVisitor &v);
};

/**
 * Warm-state checkpointing (sim.ckpt.*). With a cache directory set,
 * a run whose warm-up (skip_insts) has been simulated before under the
 * same warm-relevant configuration restores the drained pipeline state
 * from disk instead of re-simulating it; a cold run saves its warm
 * state for the next run. All knobs are execution-only: where warm
 * state is cached must never change a result, so none of them enter
 * provenance or config dumps.
 */
struct CkptConfig
{
    /** Checkpoint cache directory; empty disables checkpointing. */
    std::string dir;

    /** Compress checkpoint files (zlib container; falls back to a
     *  stored container when the build lacks zlib). */
    bool compress = true;

    /** Save a checkpoint after a cold warm-up (off = restore-only). */
    bool save = true;

    /** Reflect the checkpoint parameters (sim/params.hh). */
    void visitParams(ParamVisitor &v);
};

/**
 * Content-addressed per-cell result cache (sim.result_cache.*). With a
 * cache directory set, the parallel experiment engine serves any grid
 * cell whose (benchmark, provenance, seed, scale) content digest has
 * been simulated before — by any binary or the vpr_simd daemon — from
 * disk, byte-identical to a cold run. All knobs are execution-only:
 * where results are cached must never change a result, so none of them
 * enter provenance or config dumps.
 */
struct ResultCacheConfig
{
    /** Result cache directory; empty disables the cache. */
    std::string dir;

    /** Compress cache entries (zlib container; falls back to a stored
     *  container when the build lacks zlib). */
    bool compress = true;

    /** Save entries after simulating a missed cell (0 = read-only:
     *  serve hits but never write). */
    bool save = true;

    /** Reflect the result-cache parameters (sim/params.hh). */
    void visitParams(ParamVisitor &v);
};

/** Everything a single simulation run needs. */
struct SimConfig
{
    CoreConfig core;

    /** Statistical-sampling protocol (sim.sampling.*). */
    SamplingConfig sampling;

    /** Warm-state checkpoint cache (sim.ckpt.*; execution-only). */
    CkptConfig ckpt;

    /** Per-cell result cache (sim.result_cache.*; execution-only). */
    ResultCacheConfig resultCache;

    /** Committed instructions to skip before measuring (cache/BHT
     *  warm-up; the paper skips 100 M then measures 50 M — we scale both
     *  down, see DESIGN.md §4). */
    std::uint64_t skipInsts = 40000;

    /** Committed instructions to measure. */
    std::uint64_t measureInsts = 400000;

    /**
     * Workload seed (0 = the kernel's default). A non-zero seed feeds
     * the benchmark kernel stream directly and every other stochastic
     * component through common/random's deriveSeed with a per-component
     * salt (currently the wrong-path synthesis RNG; see
     * threadSeed in simulator.cc), so a (benchmark, config, seed) triple is
     * reproducible bit-for-bit — also when many grid cells run
     * concurrently.
     */
    std::uint64_t seed = 0;

    /**
     * Worker threads for grid sweeps through the
     * ParallelExperimentEngine: 1 = serial, 0 = one per hardware
     * thread. A single simulation is always single-threaded; jobs
     * only parallelizes *across* grid cells.
     */
    unsigned jobs = 1;

    /**
     * Reuse a per-worker simulator across grid cells of the same
     * benchmark and seed (Simulator::reinit): the warmed allocations of
     * the previous cell are kept and the core is returned to its
     * constructed state in place, killing the fixed construct/destroy
     * overhead per cell. Execution-only — results are byte-identical
     * with the pool on or off (asserted by the determinism suite), so
     * the knob never enters provenance or config dumps.
     */
    bool pool = true;

    /**
     * Convenience: apply the paper's relationship between register-file
     * size and the other renaming parameters — sets numPhysRegs, sizes
     * the VP pool to NLR + window, and sets NRR to its maximum
     * (NPR - NLR) unless @p nrr is given.
     */
    void setPhysRegs(std::uint16_t numPhysRegs, int nrr = -1);

    /** Set both NRR values (int and FP use the same value, as in the
     *  paper's experiments). */
    void setNrr(std::uint16_t nrr);

    /** Set the rename scheme. */
    void setScheme(RenameScheme scheme);

    /** Validate cross-parameter constraints; fatal()s on user error. */
    void validate() const;

    /** Non-fatal form of validate(): the first constraint violation as
     *  a message, or an empty string when the config is valid. Lets a
     *  long-lived server reject a bad request instead of exiting. */
    std::string validationError() const;

    /**
     * Reflect the whole config tree — run control, the core, and every
     * nested struct — as dotted-name parameters (sim/params.hh), plus
     * the derived convenience parameters (core.rename.regfile_size,
     * core.rename.nrr, core.window) that apply the setPhysRegs /
     * setNrr / window sizing rules above.
     */
    void visitParams(ParamVisitor &v);
};

/** A SimConfig preloaded with the paper's section 4.1 machine. */
SimConfig paperConfig();

} // namespace vpr

#endif // VPR_SIM_CONFIG_HH
