#include "sim/results_io.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/io/zio.hh"
#include "common/logging.hh"
#include "common/state.hh"
#include "sim/params.hh"

namespace vpr
{

namespace
{

/** A value placed in a CSV cell must not break the row structure. */
void
checkCsvSafe(const std::string &v)
{
    VPR_ASSERT(v.find(',') == std::string::npos &&
                   v.find('\n') == std::string::npos,
               "CSV-unsafe value '", v, "'");
}

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (;;) {
        std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

/** Minimal JSON string escaping (our names never need more). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
shardText(const ShardSpec &shard)
{
    return std::to_string(shard.index) + "/" + std::to_string(shard.count);
}

/** The effective instruction scale as round-trip-exact text. Recorded
 *  in the file metadata so shards run with different --scale values
 *  can never be merged into one (meaningless) result set. */
std::string
scaleText()
{
    std::ostringstream os;
    os << std::setprecision(17) << instructionScale();
    return os.str();
}

/** Metric names (= metric column order) of the first exported result;
 *  asserts every other result shares the schema. */
std::vector<std::string>
metricSchema(const std::vector<SimResults> &results)
{
    std::vector<std::string> names;
    if (results.empty())
        return names;
    for (const Metric &m : results.front().metrics.all())
        names.push_back(m.name());
    for (const SimResults &r : results)
        VPR_ASSERT(r.metrics.sameSchema(results.front().metrics),
                   "grid cells disagree on the metric schema");
    return names;
}

void
checkWriterArgs(const std::vector<std::size_t> &indices,
                const std::vector<GridCell> &cells,
                const std::vector<SimResults> &results)
{
    VPR_ASSERT(indices.size() == results.size(),
               "indices/results size mismatch");
    for (std::size_t i : indices)
        VPR_ASSERT(i < cells.size(), "cell index ", i,
                   " outside the ", cells.size(), "-cell grid");
}

} // namespace

const std::vector<std::string> &
resultFixedColumns()
{
    static const std::vector<std::string> columns = [] {
        std::vector<std::string> c = {"cell", "benchmark"};
        for (const ParamInfo &p : paramReference())
            if (!p.execOnly && !p.derived)
                c.push_back("cfg." + p.name);
        return c;
    }();
    return columns;
}

std::vector<std::string>
cellConfigValues(const GridCell &cell)
{
    std::vector<std::string> out = {cell.benchmark};
    for (const auto &[name, value] : configProvenance(cell.config)) {
        (void)name;
        out.push_back(value);
    }
    VPR_ASSERT(out.size() + 1 == resultFixedColumns().size(),
               "provenance column mismatch");
    return out;
}

std::string
gridConfigDigest(const std::vector<GridCell> &cells)
{
    // FNV-1a over every cell's (benchmark, key, value) provenance
    // triples with separators, so reordered or truncated grids hash
    // differently.
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](const std::string &s) {
        for (char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
        h ^= 0xffu;
        h *= 1099511628211ull;
    };
    for (const GridCell &cell : cells)
        for (const std::string &v : cellConfigValues(cell))
            mix(v);
    std::ostringstream os;
    os << std::hex << std::setfill('0') << std::setw(16) << h;
    return os.str();
}

void
writeResultsCsv(std::ostream &os, const std::string &figure,
                const ShardSpec &shard,
                const std::vector<std::size_t> &indices,
                const std::vector<GridCell> &cells,
                const std::vector<SimResults> &results)
{
    checkWriterArgs(indices, cells, results);

    os << "# vpr-results v1 figure=" << figure << " cells="
       << cells.size() << " shard=" << shardText(shard) << " scale="
       << scaleText() << " cfg=" << gridConfigDigest(cells) << "\n";

    const std::vector<std::string> metricNames = metricSchema(results);
    const std::vector<std::string> &fixed = resultFixedColumns();
    for (std::size_t i = 0; i < fixed.size(); ++i)
        os << (i ? "," : "") << fixed[i];
    for (const std::string &name : metricNames)
        os << "," << name;
    os << "\n";

    for (std::size_t k = 0; k < indices.size(); ++k) {
        os << indices[k];
        for (const std::string &v : cellConfigValues(cells[indices[k]])) {
            checkCsvSafe(v);
            os << "," << v;
        }
        for (const Metric &m : results[k].metrics.all())
            os << "," << m.text();
        os << "\n";
    }
}

void
writeResultsJson(std::ostream &os, const std::string &figure,
                 const ShardSpec &shard,
                 const std::vector<std::size_t> &indices,
                 const std::vector<GridCell> &cells,
                 const std::vector<SimResults> &results)
{
    checkWriterArgs(indices, cells, results);

    const std::vector<std::string> &fixed = resultFixedColumns();
    os << "{\n";
    os << "  \"format\": \"vpr-results\",\n";
    os << "  \"version\": 1,\n";
    os << "  \"figure\": \"" << jsonEscape(figure) << "\",\n";
    os << "  \"cells\": " << cells.size() << ",\n";
    os << "  \"shard\": \"" << shardText(shard) << "\",\n";
    os << "  \"scale\": " << scaleText() << ",\n";
    os << "  \"config_digest\": \"" << gridConfigDigest(cells) << "\",\n";
    os << "  \"records\": [";
    for (std::size_t k = 0; k < indices.size(); ++k) {
        os << (k ? ",\n" : "\n");
        os << "    {\"cell\": " << indices[k] << ", \"config\": {";
        const std::vector<std::string> config =
            cellConfigValues(cells[indices[k]]);
        for (std::size_t c = 0; c < config.size(); ++c) {
            // JSON nests the values under "config", so the dotted keys
            // drop the CSV header's "cfg." disambiguation prefix.
            std::string key = fixed[c + 1];
            if (key.compare(0, 4, "cfg.") == 0)
                key = key.substr(4);
            os << (c ? ", " : "") << "\"" << jsonEscape(key) << "\": \""
               << jsonEscape(config[c]) << "\"";
        }
        os << "}, \"metrics\": {";
        const auto &metrics = results[k].metrics.all();
        for (std::size_t m = 0; m < metrics.size(); ++m) {
            os << (m ? ", " : "")
               << "\"" << jsonEscape(metrics[m].name()) << "\": "
               << metrics[m].text();
        }
        os << "}}";
    }
    os << "\n  ]\n}\n";
}

namespace
{

bool
hasSuffix(const std::string &path, const std::string &suffix)
{
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

void
writeResultsFile(const std::string &path, const std::string &figure,
                 const ShardSpec &shard,
                 const std::vector<std::size_t> &indices,
                 const std::vector<GridCell> &cells,
                 const std::vector<SimResults> &results)
{
    // ".vprz" wraps the CSV records in the compressed container
    // (common/io/zio.hh); the reader autodetects by magic bytes, so
    // merge_results ingests both forms interchangeably.
    if (hasSuffix(path, ".vprz")) {
        std::ostringstream csv;
        writeResultsCsv(csv, figure, shard, indices, cells, results);
        if (!writeFileAtomic(path, vprzPack(csv.str(), "results")))
            VPR_FATAL("error writing '", path, "'");
        return;
    }
    std::ofstream os(path);
    if (!os)
        VPR_FATAL("cannot open '", path, "' for writing");
    if (hasSuffix(path, ".json"))
        writeResultsJson(os, figure, shard, indices, cells, results);
    else
        writeResultsCsv(os, figure, shard, indices, cells, results);
    if (!os)
        VPR_FATAL("error writing '", path, "'");
}

void
exportAllCells(const std::string &path, const std::string &figure,
               const std::vector<GridCell> &cells,
               const std::vector<SimResults> &results)
{
    std::vector<std::size_t> indices(cells.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    writeResultsFile(path, figure, ShardSpec{}, indices, cells, results);
}

ResultsFile
readResultsCsv(std::istream &is, const std::string &name)
{
    ResultsFile file;

    std::string meta;
    if (!std::getline(is, meta))
        VPR_FATAL(name, ": empty result file");
    std::istringstream metaStream(meta);
    std::string tok;
    metaStream >> tok;
    if (tok != "#")
        VPR_FATAL(name, ": missing '# vpr-results' metadata line");
    metaStream >> tok;
    if (tok != "vpr-results")
        VPR_FATAL(name, ": not a vpr-results file");
    metaStream >> tok;
    if (tok != "v1")
        VPR_FATAL(name, ": unsupported version '", tok, "'");
    while (metaStream >> tok) {
        std::size_t eq = tok.find('=');
        if (eq == std::string::npos)
            continue;
        std::string key = tok.substr(0, eq);
        std::string value = tok.substr(eq + 1);
        if (key == "figure")
            file.figure = value;
        else if (key == "cells")
            file.totalCells = std::strtoull(value.c_str(), nullptr, 10);
        else if (key == "scale")
            file.scale = value;
        else if (key == "cfg")
            file.configDigest = value;
    }

    std::string headerLine;
    if (!std::getline(is, headerLine))
        VPR_FATAL(name, ": missing header row");
    file.header = splitCsvLine(headerLine);
    const std::vector<std::string> &fixed = resultFixedColumns();
    if (file.header.size() < fixed.size() ||
        !std::equal(fixed.begin(), fixed.end(), file.header.begin()))
        VPR_FATAL(name, ": unexpected header row (foreign file, or "
                  "records from a binary with a different parameter "
                  "registry)");

    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        ResultsFile::Row row;
        row.values = splitCsvLine(line);
        if (row.values.size() != file.header.size())
            VPR_FATAL(name, ": row has ", row.values.size(),
                      " columns, header has ", file.header.size());
        row.cell = std::strtoull(row.values[0].c_str(), nullptr, 10);
        if (row.cell >= file.totalCells)
            VPR_FATAL(name, ": cell index ", row.cell,
                      " out of range (grid has ", file.totalCells,
                      " cells)");
        file.rows.push_back(std::move(row));
    }
    return file;
}

ResultsFile
readResultsCsvFile(const std::string &path)
{
    std::string data;
    if (!readFileBytes(path, data))
        VPR_FATAL("cannot open '", path, "'");
    if (guessFormat(data) == FileFormat::Vprz) {
        try {
            data = vprzUnpack(data, "results");
        } catch (const CkptError &e) {
            VPR_FATAL(path, ": ", e.what());
        }
    }
    std::istringstream is(data);
    return readResultsCsv(is, path);
}

ResultsFile
mergeResults(const std::vector<ResultsFile> &shards)
{
    if (shards.empty())
        VPR_FATAL("nothing to merge");

    ResultsFile merged;
    merged.figure = shards.front().figure;
    merged.totalCells = shards.front().totalCells;
    merged.scale = shards.front().scale;
    merged.configDigest = shards.front().configDigest;
    // The header (and with it the metric schema) comes from the first
    // shard that actually ran cells: a shard dealt an empty slice
    // (count > grid size) writes only the fixed columns and must not
    // veto the merge.
    for (const ResultsFile &shard : shards)
        if (!shard.rows.empty()) {
            merged.header = shard.header;
            break;
        }
    if (merged.header.empty())
        merged.header = shards.front().header;

    for (const ResultsFile &shard : shards) {
        if (shard.figure != merged.figure)
            VPR_FATAL("shard figure mismatch: '", shard.figure,
                      "' vs '", merged.figure, "'");
        if (shard.totalCells != merged.totalCells)
            VPR_FATAL("shard grid-size mismatch: ", shard.totalCells,
                      " vs ", merged.totalCells);
        if (shard.scale != merged.scale)
            VPR_FATAL("shard instruction-scale mismatch: '", shard.scale,
                      "' vs '", merged.scale,
                      "' — rerun every shard with the same --scale");
        if (shard.configDigest != merged.configDigest)
            VPR_FATAL("shard config provenance disagrees (grid digest '",
                      shard.configDigest, "' vs '", merged.configDigest,
                      "'): the shards were produced from different "
                      "configurations — rerun every shard with "
                      "identical --set/--config parameters and the "
                      "same binary");
        if (!shard.rows.empty() && shard.header != merged.header)
            VPR_FATAL("shard header mismatch (different metric schema?)");
        for (const ResultsFile::Row &row : shard.rows)
            merged.rows.push_back(row);
    }

    std::sort(merged.rows.begin(), merged.rows.end(),
              [](const ResultsFile::Row &a, const ResultsFile::Row &b) {
                  return a.cell < b.cell;
              });
    for (std::size_t i = 0; i + 1 < merged.rows.size(); ++i)
        if (merged.rows[i].cell == merged.rows[i + 1].cell)
            VPR_FATAL("cell ", merged.rows[i].cell,
                      " appears in more than one shard");
    if (merged.rows.size() != merged.totalCells) {
        std::size_t expect = 0;
        for (const ResultsFile::Row &row : merged.rows) {
            if (row.cell != expect)
                break;
            ++expect;
        }
        VPR_FATAL("incomplete merge: have ", merged.rows.size(), " of ",
                  merged.totalCells, " cells (first missing cell ",
                  expect, ")");
    }
    return merged;
}

void
verifyCellProvenance(const ResultsFile &file,
                     const std::vector<GridCell> &cells,
                     const std::string &name)
{
    VPR_ASSERT(cells.size() == file.totalCells,
               "provenance check needs the full ", file.totalCells,
               "-cell grid, got ", cells.size(), " cells");
    const std::vector<std::string> &fixed = resultFixedColumns();
    for (const ResultsFile::Row &row : file.rows) {
        const std::vector<std::string> expect =
            cellConfigValues(cells[row.cell]);
        for (std::size_t c = 0; c < expect.size(); ++c) {
            if (row.values[c + 1] != expect[c])
                VPR_FATAL(name, ": cell ", row.cell,
                          " config provenance mismatch at ",
                          fixed[c + 1], ": record carries '",
                          row.values[c + 1], "', the grid expects '",
                          expect[c],
                          "' — the records were produced from a "
                          "different configuration (or an older "
                          "binary)");
        }
    }
}

void
writeMergedCsv(std::ostream &os, const ResultsFile &merged)
{
    os << "# vpr-results v1 figure=" << merged.figure
       << " cells=" << merged.totalCells << " shard=0/1 scale="
       << merged.scale << " cfg=" << merged.configDigest << "\n";
    for (std::size_t i = 0; i < merged.header.size(); ++i)
        os << (i ? "," : "") << merged.header[i];
    os << "\n";
    for (const ResultsFile::Row &row : merged.rows) {
        for (std::size_t i = 0; i < row.values.size(); ++i)
            os << (i ? "," : "") << row.values[i];
        os << "\n";
    }
}

std::vector<SimResults>
resultsFromFile(const ResultsFile &file)
{
    VPR_ASSERT(file.rows.size() == file.totalCells,
               "result file is incomplete; merge the shards first");
    const std::size_t fixedColumns = resultFixedColumns().size();
    std::vector<SimResults> results(file.rows.size());
    for (std::size_t i = 0; i < file.rows.size(); ++i) {
        const ResultsFile::Row &row = file.rows[i];
        VPR_ASSERT(row.cell == i, "rows not in cell order");
        for (std::size_t c = fixedColumns; c < row.values.size(); ++c) {
            const std::string &text = row.values[c];
            const bool integral =
                !text.empty() &&
                text.find_first_not_of("0123456789") == std::string::npos;
            if (integral)
                results[i].metrics.setUInt(
                    file.header[c], "",
                    std::strtoull(text.c_str(), nullptr, 10));
            else
                results[i].metrics.setReal(
                    file.header[c], "",
                    std::strtod(text.c_str(), nullptr));
        }
    }
    return results;
}

} // namespace vpr
