#include "rename/rename_iface.hh"

#include "common/logging.hh"

namespace vpr
{

// renameSchemeName lives in factory.cc next to the scheme registry, so
// a scheme's name and constructor are registered in one place.

RenameManager::RenameManager(const RenameConfig &config)
    : cfg(config),
      pressureTrk{PressureTracker(config.numPhysRegs),
                  PressureTracker(config.numPhysRegs)}
{
    VPR_ASSERT(cfg.numPhysRegs > kNumLogicalRegs,
               "need more physical than logical registers");
}

} // namespace vpr
