#include "trace/trace_file.hh"

#include <cstring>

#include "common/logging.hh"

namespace vpr
{

namespace
{

constexpr char kMagic[8] = {'V', 'P', 'R', 'T', 'R', 'A', 'C', 'E'};

/** On-disk record layout (packed, little endian, 40 bytes). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t effAddr;
    std::uint64_t target;
    std::uint8_t op;
    std::uint8_t destClass, destIdxLo, destIdxHi;
    std::uint8_t src0Class, src0IdxLo, src0IdxHi;
    std::uint8_t src1Class, src1IdxLo, src1IdxHi;
    std::uint8_t memSize;
    std::uint8_t taken;
    std::uint8_t pad[4];
};
static_assert(sizeof(DiskRecord) == 40, "disk record layout drifted");

void
packReg(const RegId &r, std::uint8_t &cls, std::uint8_t &lo,
        std::uint8_t &hi)
{
    if (!r.valid()) {
        cls = 0xff;
        lo = hi = 0xff;
        return;
    }
    cls = static_cast<std::uint8_t>(r.regClass());
    lo = static_cast<std::uint8_t>(r.index() & 0xff);
    hi = static_cast<std::uint8_t>(r.index() >> 8);
}

RegId
unpackReg(std::uint8_t cls, std::uint8_t lo, std::uint8_t hi)
{
    if (cls == 0xff)
        return RegId::none();
    std::uint16_t idx =
        static_cast<std::uint16_t>(lo) |
        (static_cast<std::uint16_t>(hi) << 8);
    return RegId(static_cast<RegClass>(cls), idx);
}

DiskRecord
pack(const TraceRecord &r)
{
    DiskRecord d{};
    d.pc = r.pc;
    d.effAddr = r.effAddr;
    d.target = r.target;
    d.op = static_cast<std::uint8_t>(r.op);
    packReg(r.dest, d.destClass, d.destIdxLo, d.destIdxHi);
    packReg(r.src[0], d.src0Class, d.src0IdxLo, d.src0IdxHi);
    packReg(r.src[1], d.src1Class, d.src1IdxLo, d.src1IdxHi);
    d.memSize = r.memSize;
    d.taken = r.taken ? 1 : 0;
    return d;
}

TraceRecord
unpack(const DiskRecord &d)
{
    TraceRecord r;
    r.pc = d.pc;
    r.effAddr = d.effAddr;
    r.target = d.target;
    VPR_ASSERT(d.op < kNumOpClasses, "trace file: bad op class ",
               unsigned(d.op));
    r.op = static_cast<OpClass>(d.op);
    r.dest = unpackReg(d.destClass, d.destIdxLo, d.destIdxHi);
    r.src[0] = unpackReg(d.src0Class, d.src0IdxLo, d.src0IdxHi);
    r.src[1] = unpackReg(d.src1Class, d.src1IdxLo, d.src1IdxHi);
    r.memSize = d.memSize;
    r.taken = d.taken != 0;
    return r;
}

} // namespace

std::size_t
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &records)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        VPR_FATAL("cannot open trace file '", path, "' for writing");

    std::uint32_t version = kTraceFormatVersion;
    std::uint32_t count = static_cast<std::uint32_t>(records.size());
    if (std::fwrite(kMagic, sizeof(kMagic), 1, f) != 1 ||
        std::fwrite(&version, sizeof(version), 1, f) != 1 ||
        std::fwrite(&count, sizeof(count), 1, f) != 1) {
        std::fclose(f);
        VPR_FATAL("short write on trace header '", path, "'");
    }
    for (const auto &r : records) {
        DiskRecord d = pack(r);
        if (std::fwrite(&d, sizeof(d), 1, f) != 1) {
            std::fclose(f);
            VPR_FATAL("short write on trace body '", path, "'");
        }
    }
    std::fclose(f);
    return records.size();
}

std::size_t
writeTraceFile(const std::string &path, TraceStream &stream,
               std::size_t maxRecords)
{
    std::vector<TraceRecord> recs;
    recs.reserve(maxRecords);
    for (std::size_t i = 0; i < maxRecords; ++i) {
        auto r = stream.next();
        if (!r)
            break;
        recs.push_back(*r);
    }
    return writeTraceFile(path, recs);
}

std::vector<TraceRecord>
readTraceFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        VPR_FATAL("cannot open trace file '", path, "'");

    char magic[8];
    std::uint32_t version = 0, count = 0;
    if (std::fread(magic, sizeof(magic), 1, f) != 1 ||
        std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
        std::fclose(f);
        VPR_FATAL("'", path, "' is not a vpr trace file");
    }
    if (std::fread(&version, sizeof(version), 1, f) != 1 ||
        version != kTraceFormatVersion) {
        std::fclose(f);
        VPR_FATAL("'", path, "': unsupported trace version ", version);
    }
    if (std::fread(&count, sizeof(count), 1, f) != 1) {
        std::fclose(f);
        VPR_FATAL("'", path, "': truncated header");
    }

    std::vector<TraceRecord> recs;
    recs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        DiskRecord d;
        if (std::fread(&d, sizeof(d), 1, f) != 1) {
            std::fclose(f);
            VPR_FATAL("'", path, "': truncated at record ", i, " of ",
                      count);
        }
        recs.push_back(unpack(d));
    }
    std::fclose(f);
    return recs;
}

} // namespace vpr
