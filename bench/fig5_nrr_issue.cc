/**
 * @file
 * Figure 5 of the paper: speedup of the virtual-physical organization
 * with register allocation at *issue* over the conventional scheme, for
 * NRR in {1, 4, 8, 16, 24, 32}. Grid/table: bench/figures/.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return vpr::bench::figureMain("fig5_nrr_issue", argc, argv);
}
