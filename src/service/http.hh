/**
 * @file
 * Minimal blocking HTTP/1.1 over a small portable POSIX socket layer —
 * just enough protocol for the sweep daemon (vpr_simd) and its client:
 * one request per connection (the server always answers
 * "Connection: close"), request bodies sized by Content-Length, no
 * chunked encoding, no TLS. Hand-rolled so the service adds no
 * dependencies; the interesting logic lives in sweep_service.hh, which
 * is plain request-in/response-out and never touches a socket.
 */

#ifndef VPR_SERVICE_HTTP_HH
#define VPR_SERVICE_HTTP_HH

#include <cstdint>
#include <functional>
#include <string>

namespace vpr::service
{

/** One parsed HTTP request (method, path, optional body). */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ...
    std::string path;    ///< "/sweep" (query strings are kept verbatim)
    std::string body;
};

/** One HTTP response the handler fills in. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain";
    std::string body;
};

/** Standard reason phrase for the status codes the service emits. */
const char *httpReason(int status);

/**
 * Blocking single-threaded HTTP server: bind, then serve() accepts one
 * connection at a time and runs the handler inline. Long sweeps
 * therefore serialize requests — acceptable for a v1 compute service
 * whose unit of work is seconds, and what keeps every shared structure
 * (time series, result cache counters) race-free by construction.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    HttpServer() = default;
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind and listen on @p host:@p port (port 0 = ephemeral; read the
     *  chosen port back with port()). False + @p error on failure. */
    bool bindAndListen(const std::string &host, std::uint16_t port,
                       std::string &error);

    /** The bound port (valid after bindAndListen succeeded). */
    std::uint16_t port() const { return boundPort; }

    /**
     * Accept-and-handle loop; returns after a handler calls
     * requestStop() (checked between connections). A malformed request
     * gets a 400 without reaching the handler; socket-level errors on
     * one connection never take the server down.
     */
    void serve(const Handler &handler);

    /** Make serve() return after the in-flight connection completes. */
    void requestStop() { stopping = true; }

  private:
    int listenFd = -1;
    std::uint16_t boundPort = 0;
    bool stopping = false;
};

/**
 * Blocking HTTP client for vpr_client and the tests: one request, one
 * response. True on any complete HTTP exchange (@p response carries
 * the status, even 4xx/5xx); false + @p error on connect/protocol
 * failure.
 */
bool httpRequest(const std::string &host, std::uint16_t port,
                 const std::string &method, const std::string &path,
                 const std::string &body, HttpResponse &response,
                 std::string &error);

} // namespace vpr::service

#endif // VPR_SERVICE_HTTP_HH
