#include "sim/simulator.hh"

#include <iomanip>

#include "common/logging.hh"
#include "common/random.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{

namespace
{

/** Component salt for deriveSeed: the wrong-path synthesis RNG. */
constexpr std::uint64_t kWrongPathSalt = 0x77f00dull;

/** Thread the run's master seed into every stochastic component the
 *  config controls; with seed 0 the per-component defaults apply. */
void
threadSeed(SimConfig &cfg)
{
    if (cfg.seed != 0)
        cfg.core.fetch.wrongPathSeed =
            deriveSeed(cfg.seed, kWrongPathSalt);
}

} // namespace

Simulator::Simulator(TraceStream &stream, const SimConfig &config)
    : cfg(config)
{
    cfg.validate();
    threadSeed(cfg);
    theCore = std::make_unique<Core>(stream, cfg.core);
}

Simulator::Simulator(const std::string &benchmark, const SimConfig &config)
    : cfg(config)
{
    cfg.validate();
    threadSeed(cfg);
    ownedStream = makeBenchmarkStream(benchmark, cfg.seed);
    theCore = std::make_unique<Core>(*ownedStream, cfg.core);
}

SimResults
Simulator::run()
{
    Core &c = *theCore;
    if (cfg.skipInsts > 0)
        c.runUntilCommitted(cfg.skipInsts);
    c.resetStats();
    std::uint64_t target = c.committedInsts() + cfg.measureInsts;
    c.runUntilCommitted(target);

    SimResults r;
    collectMetrics(r.metrics);
    return r;
}

void
Simulator::collectMetrics(MetricsRecord &m) const
{
    const Core &c = *theCore;
    const CoreStatsSnapshot s = c.snapshot();

    // Stat groups are built on the fly from the interval snapshot and
    // visited into the record, so the export schema is exactly what the
    // groups register — adding a stat here adds a column everywhere.
    stats::StatGroup core("core");
    stats::Scalar cycles("cycles", "simulated cycles in the interval");
    cycles.set(s.cycles);
    stats::Scalar committed("committed", "committed instructions");
    committed.set(s.committed);
    stats::Scalar committedExec("committed_executions",
                                "issues of committed instructions");
    committedExec.set(s.committedExecutions);
    stats::Scalar issued("issued", "instructions issued");
    issued.set(s.issued);
    stats::Scalar squashed("squashed", "instructions squashed");
    squashed.set(s.squashed);
    stats::Scalar wbRej("wb_rejections",
                        "write-back allocation denials (VP)");
    wbRej.set(s.wbRejections);
    stats::Scalar branches("branches", "branches fetched");
    branches.set(s.branches);
    stats::Scalar mispred("mispredicts", "mispredicted branches");
    mispred.set(s.mispredicts);
    stats::Scalar stallReg("rename_stall_reg",
                           "rename stalls: no free register");
    stallReg.set(s.renameStallReg);
    stats::Scalar stallRob("rename_stall_rob", "rename stalls: ROB full");
    stallRob.set(s.renameStallRob);
    stats::Scalar stallIq("rename_stall_iq", "rename stalls: IQ full");
    stallIq.set(s.renameStallIq);
    stats::Scalar stallLsq("rename_stall_lsq", "rename stalls: LSQ full");
    stallLsq.set(s.renameStallLsq);
    stats::Scalar storeStalls("store_commit_stalls",
                              "commit stalls on store write");
    storeStalls.set(s.storeCommitStalls);
    stats::Real ipc("ipc", "committed instructions per cycle");
    ipc.set(s.ipc());
    stats::Real execPerCommit("exec_per_commit",
                              "executions per committed instruction");
    execPerCommit.set(s.executionsPerCommit());
    stats::Real busyInt("avg_busy_int_regs",
                        "mean busy integer physical registers");
    busyInt.set(s.avgBusyIntRegs);
    stats::Real busyFp("avg_busy_fp_regs",
                       "mean busy FP physical registers");
    busyFp.set(s.avgBusyFpRegs);
    for (stats::Scalar *st :
         {&cycles, &committed, &committedExec, &issued, &squashed, &wbRej,
          &branches, &mispred, &stallReg, &stallRob, &stallIq, &stallLsq,
          &storeStalls})
        core.add(st);
    core.add(&ipc);
    core.add(&execPerCommit);
    core.add(&busyInt);
    core.add(&busyFp);

    stats::StatGroup memory("memory");
    stats::Scalar accesses("cache_accesses", "L1 data cache accesses");
    accesses.set(s.cacheAccesses);
    stats::Scalar misses("cache_misses",
                         "L1 data cache misses (incl. merged)");
    misses.set(s.cacheMisses);
    stats::Real missRate("cache_miss_rate", "L1 data cache miss rate");
    missRate.set(c.cache().missRate());
    stats::Scalar forwards("lsq_forwards", "store-to-load forwards");
    forwards.set(c.lsq().forwards());
    memory.add(&accesses);
    memory.add(&misses);
    memory.add(&missRate);
    memory.add(&forwards);

    stats::StatGroup branch("branch");
    stats::Real bhtAcc("bht_accuracy", "branch predictor accuracy");
    bhtAcc.set(c.fetchUnit().predictor().accuracy());
    branch.add(&bhtAcc);

    stats::StatGroup rename("rename");
    stats::Real holdInt("mean_hold_cycles_int",
                        "mean register-holding cycles per int value");
    holdInt.set(c.renamer().pressure(RegClass::Int).meanHoldCycles());
    stats::Real holdFp("mean_hold_cycles_fp",
                       "mean register-holding cycles per FP value");
    holdFp.set(c.renamer().pressure(RegClass::Float).meanHoldCycles());
    rename.add(&holdInt);
    rename.add(&holdFp);

    for (const stats::StatGroup *g : {&core, &memory, &branch, &rename})
        g->visit(m);
}

void
Simulator::printReport(std::ostream &os, const SimResults &r) const
{
    os << "scheme            " << renameSchemeName(cfg.core.scheme)
       << "\n";
    os << "physRegs/file     " << cfg.core.rename.numPhysRegs << "\n";
    os << "NRR (int/fp)      " << cfg.core.rename.nrrInt << "/"
       << cfg.core.rename.nrrFp << "\n";
    // The record is self-describing: one line per metric.
    for (const Metric &m : r.metrics.all()) {
        os << std::left << std::setw(32) << m.name << " " << std::right
           << std::setw(14);
        if (m.kind == Metric::Kind::UInt)
            os << m.uval;
        else
            os << std::fixed << std::setprecision(4) << m.rval
               << std::defaultfloat;
        os << "  # " << m.desc << "\n";
    }
}

} // namespace vpr
