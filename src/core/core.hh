/**
 * @file
 * The out-of-order core: an 8-wide dynamically scheduled processor with
 * precise exceptions, matching section 4.1 of the paper.
 *
 * Core is a thin composition root. The pipeline logic lives in five
 * stage classes under core/stages/ behind the common Stage interface;
 * Core owns the shared PipelineState, the inter-stage latches, and the
 * stage graph, and ticks the stages back to front (one call to tick() =
 * one cycle) so same-cycle producer→consumer wakeups behave like a
 * bypass network:
 *
 *   commit  — up to commitWidth in-order retires; stores write the
 *             cache; the renamer frees the previous mapping.
 *   complete— completion events fire: write-back allocation happens
 *             here (VP write-back policy may squash back to the IQ);
 *             values broadcast to the IQ; mispredicted branches trigger
 *             the recovery walk and fetch redirect.
 *   issue   — oldest-first select over ready IQ entries constrained by
 *             FUs, register-file read ports, cache ports, memory
 *             disambiguation and the renamer's issue gate.
 *   rename  — drains the fetch buffer into ROB/IQ/LSQ through the
 *             RenameManager.
 *   fetch   — fills the fetch buffer from the trace.
 */

#ifndef VPR_CORE_CORE_HH
#define VPR_CORE_CORE_HH

#include <array>
#include <memory>

#include "common/state.hh"
#include "core/core_config.hh"
#include "core/stages/commit_stage.hh"
#include "core/stages/complete_stage.hh"
#include "core/stages/fetch_stage.hh"
#include "core/stages/issue_stage.hh"
#include "core/stages/latches.hh"
#include "core/stages/pipeline_state.hh"
#include "core/stages/rename_stage.hh"
#include "core/stages/stage.hh"
#include "rename/factory.hh"

namespace vpr
{

/** One simulated out-of-order core: state + latches + stage graph. */
class Core : public SquashCoordinator
{
  public:
    Core(TraceStream &stream, const CoreConfig &config);

    /** Advance one cycle. @return false once the pipeline has drained. */
    bool tick();

    /** Run until @p maxCommitted instructions committed (or done). */
    void runUntilCommitted(std::uint64_t maxCommitted);

    /**
     * Fast-forward @p n instructions without detailed simulation: drain
     * the pipeline to a quiescent point, then retire instructions
     * straight off the trace. With @p warm (SMARTS functional warming)
     * every branch trains the BHT and every memory op probes the cache,
     * so long-lived microarchitectural state tracks the full run; the
     * clock advances one cycle per instruction to keep the cache's
     * timestamp-ordered machinery moving. Without @p warm the trace
     * position just skips ahead. Fast-forwarded instructions count in
     * functionallyRetired(), never in committedInsts().
     * @return instructions actually fast-forwarded (short at trace end).
     */
    std::uint64_t fastForward(std::uint64_t n, bool warm = true);

    /** Instructions retired through fastForward() so far. */
    std::uint64_t functionallyRetired() const { return ffRetired; }

    Cycle cycle() const { return state.curCycle; }
    std::uint64_t committedInsts() const { return commit.committedTotal(); }
    bool done() const;

    /** Start a measurement interval across the whole stats tree. */
    void resetStats();

    /**
     * Return the whole core to the constructed state without
     * reconstructing it (simulator reuse between grid cells): every
     * structure, latch, stage and counter ends up exactly as a fresh
     * Core over the same (rewound) stream and config — asserted
     * byte-identical by the determinism suite. The stats tree and its
     * registered groups are never reseated, which is what makes in-place
     * reuse possible at all.
     */
    void reinit();

    /**
     * Walk the core's stats tree into @p v: every component's and
     * stage's StatGroup, in registration order, derived values brought
     * up to date first. This is the single export path — a stat added
     * to any component appears in every consumer with no glue.
     */
    void visitStats(stats::StatVisitor &v);

    /** True if a completion event for @p seq is pending (tests/debug). */
    bool
    hasPendingEvent(InstSeqNum seq) const
    {
        return completions.pendingFor(seq);
    }

    /** SquashCoordinator: recovery walk over the shared structures,
     *  then fan the squash out to every stage's private state. */
    void squashYoungerThan(InstSeqNum youngestKept) override;

    /** The stage graph in tick order, back (commit) to front (fetch). */
    const std::array<Stage *, 5> &stages() const { return stageGraph; }

    /**
     * Drain the pipeline to a quiescent point (fetch paused until the
     * ROB, queues and event calendar are empty) so the core can be
     * checkpointed: at quiescence every transient structure is empty
     * and only long-lived state needs to travel.
     */
    void drainForCheckpoint() { drain(); }

    /** No in-flight work anywhere in the stage graph or latches. */
    bool quiescent() const;

    /**
     * Serialize/restore the core at a quiescent point. Functional scope
     * covers only the state a functional fast-forward warms (trace
     * position, BHT, cache hierarchy, clocks) — one such checkpoint is
     * shared by every sweep cell with the same warm-relevant
     * configuration. Full scope adds the renamer, sequence numbers and
     * whole-run counters for exact warm-up replay.
     */
    void visitState(StateVisitor &v, CkptScope scope);

    /** Trace stream access (checkpoint identity/rewind). */
    TraceStream &stream() { return state.fetch.stream(); }

    /** Component access (tests / detailed reporting). @{ */
    const Rob &rob() const { return state.rob; }
    const InstQueue &iq() const { return state.iq; }
    const Lsq &lsq() const { return state.lsq; }
    const NonBlockingCache &cache() const { return state.cache; }
    const FetchUnit &fetchUnit() const { return state.fetch; }
    const RenameManager &renamer() const { return *state.renameMgr; }
    RenameManager &renamer() { return *state.renameMgr; }
    const FuPool &fuPool() const { return state.fus; }
    const CoreConfig &config() const { return state.cfg; }
    /** @} */

  private:
    /** Tick with fetch paused until the pipeline is empty. */
    void drain();

    PipelineState state;
    std::uint64_t ffRetired = 0;

    // Inter-stage latches/ports (see stages/latches.hh).
    CompletionQueue completions;
    FetchBufferPort fetchBuffer;
    FetchRedirectPort fetchRedirect;

    // The stages, back to front.
    CommitStage commit;
    CompleteStage complete;
    IssueStage issue;
    RenameStage rename;
    FetchStage fetchStage;
    std::array<Stage *, 5> stageGraph;

    // Cross-stage derived metrics (IPC needs commit + the clock); the
    // composition root is the one place that sees both.
    stats::StatGroup derivedGroup{"core"};
    stats::Real ipcStat{"ipc", "committed instructions per cycle"};
    stats::Real execPerCommitStat{
        "exec_per_commit", "executions per committed instruction"};
};

} // namespace vpr

#endif // VPR_CORE_CORE_HH
