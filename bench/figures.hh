/**
 * @file
 * The figure registry: every paper table/figure/ablation as a
 * (deterministic grid, renderer) pair.
 *
 * A FigureDef separates *what to simulate* (build(), a pure function
 * returning the grid cells in a fixed order) from *how to present it*
 * (render(), a pure function of the cell-ordered results). That split
 * is what makes sharding safe: any subset of cells can run anywhere,
 * the records travel as CSV, and tools/merge_results re-renders the
 * table from the merged records byte-identically to an unsharded run —
 * both paths go through the same render().
 */

#ifndef VPR_BENCH_FIGURES_HH
#define VPR_BENCH_FIGURES_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace vpr::bench
{

/** One registered figure. */
struct FigureDef
{
    /** Stable id; equals the bench binary's name. */
    std::string name;
    /** Build the full grid (pure; identical on every host). */
    std::function<std::vector<GridCell>()> build;
    /** Print the paper-style table(s) from cell-ordered results. */
    std::function<void(const std::vector<GridCell> &,
                       const std::vector<SimResults> &, std::ostream &)>
        render;
};

/** Every registered figure, in paper order. */
const std::vector<FigureDef> &allFigures();

/** Lookup by name; nullptr when unknown. */
const FigureDef *findFigure(const std::string &name);

/**
 * The shared bench main(): parse args, build the grid, run the whole
 * grid (or the --shard slice), export --out records, and render the
 * table (unsharded runs only — a shard cannot render a partial table).
 */
int figureMain(const std::string &name, int argc, char **argv);

/** Figure constructors, one per bench binary. @{ */
FigureDef fig4Figure();
FigureDef fig5Figure();
FigureDef fig6Figure();
FigureDef fig7Figure();
FigureDef table2Figure();
FigureDef ablationEarlyReleaseFigure();
FigureDef ablationMshrFigure();
FigureDef ablationWindowFigure();
FigureDef ablationWrongPathFigure();
FigureDef motivatingExampleFigure();
FigureDef regPressureFigure();
/** @} */

} // namespace vpr::bench

#endif // VPR_BENCH_FIGURES_HH
