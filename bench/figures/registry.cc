/**
 * @file
 * Figure registry and the shared bench main().
 */

#include "figures.hh"

#include <iostream>

#include "common/logging.hh"
#include "sim/results_io.hh"

namespace vpr::bench
{

const std::vector<FigureDef> &
allFigures()
{
    // Explicit list (no static self-registration: these live in a
    // static library, where unreferenced registrars would be dropped).
    static const std::vector<FigureDef> figures = {
        table2Figure(),
        fig4Figure(),
        fig5Figure(),
        fig6Figure(),
        fig7Figure(),
        ablationEarlyReleaseFigure(),
        ablationMshrFigure(),
        ablationWindowFigure(),
        ablationWrongPathFigure(),
        motivatingExampleFigure(),
        regPressureFigure(),
    };
    return figures;
}

const FigureDef *
findFigure(const std::string &name)
{
    for (const FigureDef &def : allFigures())
        if (def.name == name)
            return &def;
    return nullptr;
}

int
figureMain(const std::string &name, int argc, char **argv)
{
    parseArgs(argc, argv);
    const FigureDef *def = findFigure(name);
    if (!def)
        VPR_FATAL("unregistered figure '", name, "'");
    const BenchOptions &opt = benchOptions();
    const bool jsonOut =
        opt.outPath.size() >= 5 &&
        opt.outPath.compare(opt.outPath.size() - 5, 5, ".json") == 0;
    if (opt.shard.active() && jsonOut)
        VPR_FATAL("--shard output must be CSV (tools/merge_results "
                  "cannot merge JSON); drop the .json extension");

    const std::vector<GridCell> cells = def->build();
    const std::vector<std::size_t> indices =
        shardCellIndices(cells.size(), opt.shard);
    const std::vector<GridCell> selected = selectCells(cells, indices);
    const std::vector<SimResults> results =
        runGrid(selected, defaultJobs());

    if (!opt.outPath.empty())
        writeResultsFile(opt.outPath, def->name, opt.shard, indices,
                         cells, results);

    if (opt.shard.active()) {
        // A shard holds only part of the grid; the table comes from
        // merging every shard's records (tools/merge_results --render).
        std::cout << "shard " << opt.shard.index << "/" << opt.shard.count
                  << ": ran " << selected.size() << " of " << cells.size()
                  << " grid cells";
        if (!opt.outPath.empty())
            std::cout << "; records written to " << opt.outPath;
        else
            std::cout << " (no --out; records discarded)";
        std::cout << "\n";
        return 0;
    }

    def->render(cells, results, std::cout);
    return 0;
}

} // namespace vpr::bench
