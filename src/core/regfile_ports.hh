/**
 * @file
 * Register-file and cache port arbitration.
 *
 * The paper's register files have 16 read and 8 write ports each, and
 * the cache has 3 ports. Reads are consumed at issue within one cycle;
 * writes are scheduled at completion time (completion slips to the next
 * cycle with a free port); cache ports are claimed for the cycle of the
 * access. The arbitration logic lives in regfile_ports.cc so the many
 * stage translation units that include this header stay light.
 */

#ifndef VPR_CORE_REGFILE_PORTS_HH
#define VPR_CORE_REGFILE_PORTS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/reg.hh"

namespace vpr
{

/**
 * Per-cycle counting arbiter used for write and cache ports.
 *
 * Claims live in a cycle-tagged ring: slot cycle % capacity holds the
 * count for that cycle, with the owning cycle stored alongside so a
 * slot left over from a lapped (long-past) cycle reads as free. The
 * arbiter allocates only when the claim horizon outgrows the ring —
 * the steady-state claim/prune cycle of the pipeline loop touches no
 * allocator at all, where the previous std::map spent one node per
 * (cycle, class) claimed. pruneBefore is a watermark store: slots are
 * invalidated lazily on their next use.
 */
class PortSchedule
{
  public:
    explicit PortSchedule(unsigned portsPerCycle)
        : ports(portsPerCycle), counts(kInitialSlots, 0),
          tags(kInitialSlots, kNoCycle)
    {}

    /** Claim a port at exactly @p cycle; false if none left. */
    bool
    tryClaim(Cycle cycle)
    {
        unsigned &used = slotFor(cycle);
        if (used >= ports)
            return false;
        ++used;
        return true;
    }

    /** First cycle >= @p earliest with a free port; claims it. */
    Cycle
    claimFirstFree(Cycle earliest)
    {
        Cycle c = earliest;
        while (!tryClaim(c))
            ++c;
        return c;
    }

    /** Drop bookkeeping for cycles before @p now. */
    void pruneBefore(Cycle now) { base = now > base ? now : base; }

    unsigned portsPerCycle() const { return ports; }

    /** Ports already claimed at @p cycle (tests). */
    unsigned used(Cycle cycle) const;

    void clear();

  private:
    /** A write scheduled past the miss penalty is rare; 1024 slots
     *  cover any realistic claim horizon without ever growing. */
    static constexpr std::size_t kInitialSlots = 1024;

    unsigned &slotFor(Cycle cycle);
    void grow(Cycle needed);

    unsigned ports;
    /** Claims at cycle c live in slot c % capacity... @{ */
    std::vector<unsigned> counts;
    /** ...owned by cycle tags[slot]; kNoCycle or a pruned tag = free. */
    std::vector<Cycle> tags;
    /** @} */
    /** Claims below this watermark are dead (pruneBefore). */
    Cycle base = 0;
};

/** Read/write port tracking for both register files. */
class RegFilePorts
{
  public:
    RegFilePorts(unsigned readPorts, unsigned writePorts)
        : nReadPorts(readPorts),
          writes{PortSchedule(writePorts), PortSchedule(writePorts)}
    {}

    /** Start a cycle: read ports replenish. */
    void beginCycle(Cycle now);

    /** Could @p nInt integer and @p nFp FP reads be claimed now? */
    bool canClaimReads(unsigned nInt, unsigned nFp) const;

    /** Claim read ports for one issuing instruction (both classes). */
    bool tryClaimReads(unsigned nInt, unsigned nFp);

    /** Undo a claim made this cycle (issue aborted later in the chain). */
    void unclaimReads(unsigned nInt, unsigned nFp);

    /** Schedule a result write at the first free cycle >= earliest. */
    Cycle scheduleWrite(RegClass cls, Cycle earliest);

    unsigned readPortsPerCycle() const { return nReadPorts; }
    unsigned
    writePortsPerCycle() const
    {
        return writes[0].portsPerCycle();
    }

    /** Return to the constructed state: no reads claimed, no writes
     *  scheduled (simulator reuse between grid cells). */
    void
    clear()
    {
        readsUsed[0] = readsUsed[1] = 0;
        writes[0].clear();
        writes[1].clear();
    }

  private:
    unsigned nReadPorts;
    unsigned readsUsed[kNumRegClasses] = {0, 0};
    PortSchedule writes[kNumRegClasses];
};

} // namespace vpr

#endif // VPR_CORE_REGFILE_PORTS_HH
