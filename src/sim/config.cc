#include "sim/config.hh"

#include "common/logging.hh"
#include "sim/params.hh"

namespace vpr
{

void
SimConfig::setPhysRegs(std::uint16_t numPhysRegs, int nrr)
{
    core.rename.numPhysRegs = numPhysRegs;
    core.rename.numVPRegs =
        static_cast<std::uint16_t>(kNumLogicalRegs + core.robSize);
    std::uint16_t maxNrr =
        static_cast<std::uint16_t>(numPhysRegs - kNumLogicalRegs);
    std::uint16_t v = nrr < 0 ? maxNrr : static_cast<std::uint16_t>(nrr);
    core.rename.nrrInt = v;
    core.rename.nrrFp = v;
}

void
SimConfig::setNrr(std::uint16_t nrr)
{
    core.rename.nrrInt = nrr;
    core.rename.nrrFp = nrr;
}

void
SimConfig::setScheme(RenameScheme scheme)
{
    core.scheme = scheme;
}

std::string
SimConfig::validationError() const
{
    const RenameConfig &r = core.rename;
    if (r.numPhysRegs <= kNumLogicalRegs)
        return detail::concat("numPhysRegs (", r.numPhysRegs,
                              ") must exceed the ", kNumLogicalRegs,
                              " logical registers");
    if (isVirtualPhysical(core.scheme)) {
        if (r.numVPRegs < kNumLogicalRegs + core.robSize)
            return detail::concat(
                "numVPRegs (", r.numVPRegs, ") must be >= NLR + "
                "window (", kNumLogicalRegs + core.robSize,
                ") so decode never starves for tags");
        if (r.nrrInt < 1 || r.nrrFp < 1)
            return "NRR must be >= 1 (deadlock avoidance)";
        if (r.nrrInt > r.numPhysRegs - kNumLogicalRegs ||
            r.nrrFp > r.numPhysRegs - kNumLogicalRegs)
            return detail::concat("NRR must be <= NPR - NLR = ",
                                  r.numPhysRegs - kNumLogicalRegs);
    }
    if (core.iqSize < core.robSize)
        return "iqSize must be >= robSize (unified queue)";
    if (sampling.enable) {
        if (sampling.detailedInsts == 0)
            return "sampling: zero-length detailed interval "
                   "(sim.sampling.detailed_insts must be >= 1)";
        if (sampling.warmupInsts + sampling.detailedInsts >
            sampling.periodInsts)
            return detail::concat(
                "sampling: warm-up (", sampling.warmupInsts,
                ") plus detailed interval (", sampling.detailedInsts,
                ") exceeds the period (", sampling.periodInsts, ")");
        if (sampling.periodInsts > measureInsts)
            return detail::concat(
                "sampling: period (", sampling.periodInsts,
                ") exceeds the measurement budget (", measureInsts,
                "); not even one interval fits");
    }
    return std::string();
}

void
SimConfig::validate() const
{
    const std::string error = validationError();
    if (!error.empty())
        VPR_FATAL(error);
}

void
SamplingConfig::visitParams(ParamVisitor &v)
{
    v.boolParam("enable", enable,
                "alternate fast-forward and detailed intervals instead "
                "of measuring every instruction (SMARTS-style sampling)");
    v.uintParam("period_insts", periodInsts,
                "instructions per sampling period (fast-forward + "
                "warm-up + detailed)");
    v.uintParam("warmup_insts", warmupInsts,
                "detailed-but-unmeasured instructions before each "
                "measurement interval");
    v.uintParam("detailed_insts", detailedInsts,
                "measured detailed instructions per period");
    v.boolParam("functional_warming", functionalWarming,
                "caches and the BHT observe every fast-forwarded access "
                "(off = bare trace skip, cold-state sampling)");
}

void
CkptConfig::visitParams(ParamVisitor &v)
{
    // All execution-only: where warm state is cached must never change
    // a result, so none of these enter provenance or config dumps.
    v.strParam("dir", dir,
               "warm-state checkpoint cache directory (empty = "
               "checkpointing disabled); never changes results",
               /*execOnly=*/true);
    v.boolParam("compress", compress,
                "compress checkpoint files (zlib container; stored "
                "container when the build lacks zlib)",
                /*execOnly=*/true);
    v.boolParam("save", save,
                "save a checkpoint after a cold warm-up (0 = "
                "restore-only)",
                /*execOnly=*/true);
}

void
ResultCacheConfig::visitParams(ParamVisitor &v)
{
    // All execution-only: where whole-cell results are cached must
    // never change a result, so none of these enter provenance or
    // config dumps.
    v.strParam("dir", dir,
               "content-addressed per-cell result cache directory "
               "(empty = cache disabled); never changes results",
               /*execOnly=*/true);
    v.boolParam("compress", compress,
                "compress result-cache entries (zlib container; stored "
                "container when the build lacks zlib)",
                /*execOnly=*/true);
    v.boolParam("save", save,
                "save an entry after simulating a missed cell (0 = "
                "read-only cache)",
                /*execOnly=*/true);
}

void
SimConfig::visitParams(ParamVisitor &v)
{
    v.uintParam("skip_insts", skipInsts,
                "committed instructions to skip before measuring "
                "(cache/BHT warm-up)");
    v.uintParam("measure_insts", measureInsts,
                "committed instructions to measure");
    v.uintParam("seed", seed,
                "workload seed (0 = the kernel's default stream)");
    v.uintParam("jobs", jobs,
                "worker threads for grid sweeps (0 = one per hardware "
                "thread); never changes results",
                /*execOnly=*/true);
    v.pushGroup("sim");
    v.boolParam("pool", pool,
                "reuse a per-worker simulator across grid cells of the "
                "same benchmark and seed (in-place core reinit); never "
                "changes results",
                /*execOnly=*/true);
    v.pushGroup("sampling");
    sampling.visitParams(v);
    v.popGroup();
    v.pushGroup("ckpt");
    ckpt.visitParams(v);
    v.popGroup();
    v.pushGroup("result_cache");
    resultCache.visitParams(v);
    v.popGroup();
    v.popGroup();
    v.pushGroup("core");
    core.visitParams(v);
    v.popGroup();

    // Convenience parameters: one knob applying the paper's
    // cross-parameter sizing rules. Settable and sweepable like any
    // other parameter; exports always carry the underlying values.
    v.derivedUInt(
        "core.rename.regfile_size",
        "register-file sizing rule: sets phys_regs, sizes the VP pool "
        "to NLR + window, and sets NRR to its maximum (NPR - NLR)",
        std::numeric_limits<std::uint16_t>::max(),
        [this] { return std::to_string(core.rename.numPhysRegs); },
        [this](std::uint64_t n) {
            setPhysRegs(static_cast<std::uint16_t>(n));
            return true;
        });
    v.derivedUInt(
        "core.rename.nrr",
        "sets both reserved-register counts (nrr_int and nrr_fp), as "
        "in the paper's experiments",
        std::numeric_limits<std::uint16_t>::max(),
        [this] { return std::to_string(core.rename.nrrInt); },
        [this](std::uint64_t n) {
            setNrr(static_cast<std::uint16_t>(n));
            return true;
        });
    v.derivedUInt(
        "core.window",
        "window sizing rule: sets rob_size, iq_size and lsq_size "
        "together and re-derives vp_regs and NRR (= max) from the new "
        "window",
        std::numeric_limits<std::uint32_t>::max(),
        [this] { return std::to_string(core.robSize); },
        [this](std::uint64_t n) {
            core.robSize = static_cast<std::size_t>(n);
            core.iqSize = static_cast<std::size_t>(n);
            core.lsqSize = static_cast<std::size_t>(n);
            setPhysRegs(core.rename.numPhysRegs);
            return true;
        });
}

SimConfig
paperConfig()
{
    SimConfig sc;
    // CoreConfig defaults already encode section 4.1; make the
    // dependent sizing explicit.
    sc.setPhysRegs(64, 32);
    return sc;
}

} // namespace vpr
