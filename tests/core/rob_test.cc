/** @file Unit tests for the reorder buffer. */

#include <gtest/gtest.h>

#include "core/rob.hh"

namespace vpr
{
namespace
{

/** A ROB with its backing hot-state pool (allocate() binds the two). */
struct RobFixture
{
    explicit RobFixture(std::size_t entries) : hot(entries), rob(entries, hot)
    {
    }

    DynInst *
    alu(InstSeqNum seq)
    {
        DynInst *d = rob.allocate();
        d->si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                                RegId::intReg(3));
        d->setSeq(seq);
        return d;
    }

    InstHotPool hot;
    Rob rob;
};

TEST(Rob, InsertAndHeadTail)
{
    RobFixture f(4);
    f.alu(1);
    f.alu(2);
    EXPECT_EQ(f.rob.head().seq(), 1u);
    EXPECT_EQ(f.rob.tail().seq(), 2u);
    EXPECT_EQ(f.rob.size(), 2u);
}

TEST(Rob, PointersStableAcrossOtherOps)
{
    RobFixture f(4);
    DynInst *a = f.alu(1);
    DynInst *b = f.alu(2);
    f.alu(3);
    EXPECT_EQ(a->seq(), 1u);
    f.rob.commitHead();
    EXPECT_EQ(b->seq(), 2u);
    EXPECT_EQ(&f.rob.head(), b);
}

TEST(Rob, CommitHeadAdvances)
{
    RobFixture f(4);
    f.alu(1);
    f.alu(2);
    f.rob.commitHead();
    EXPECT_EQ(f.rob.head().seq(), 2u);
}

TEST(Rob, SquashTailWalk)
{
    RobFixture f(4);
    f.alu(1);
    f.alu(2);
    f.alu(3);
    // Paper-style recovery: pop from the newest down to the offender.
    while (!f.rob.empty() && f.rob.tail().seq() > 1)
        f.rob.squashTail();
    EXPECT_EQ(f.rob.size(), 1u);
    EXPECT_EQ(f.rob.tail().seq(), 1u);
}

TEST(Rob, FullWindow)
{
    RobFixture f(2);
    f.alu(1);
    EXPECT_FALSE(f.rob.full());
    f.alu(2);
    EXPECT_TRUE(f.rob.full());
    f.rob.commitHead();
    EXPECT_FALSE(f.rob.full());
}

TEST(Rob, PaperWindowSizeDefaultUsable)
{
    // The paper's 128-entry reorder buffer.
    RobFixture f(128);
    for (InstSeqNum i = 1; i <= 128; ++i)
        f.alu(i);
    EXPECT_TRUE(f.rob.full());
    EXPECT_EQ(f.rob.capacity(), 128u);
}

TEST(Rob, OccupancySampling)
{
    RobFixture f(16);
    f.alu(1);
    f.rob.sampleOccupancy();
    f.alu(2);
    f.rob.sampleOccupancy();
    EXPECT_EQ(f.rob.occupancyStat().samples(), 2u);
    EXPECT_DOUBLE_EQ(f.rob.occupancyStat().mean(), 1.5);
}

TEST(Rob, AtIndexesFromOldest)
{
    RobFixture f(4);
    f.alu(7);
    f.alu(8);
    f.rob.commitHead();
    f.alu(9);
    EXPECT_EQ(f.rob.at(0).seq(), 8u);
    EXPECT_EQ(f.rob.at(1).seq(), 9u);
}

TEST(Rob, AllocateBindsSlotAndResetsHotRow)
{
    RobFixture f(4);
    DynInst *a = f.alu(1);
    EXPECT_EQ(a->hot, &f.hot);
    EXPECT_NE(a->slot, kNoHotIdx);
    EXPECT_EQ(f.rob.headSlot(), a->slot);
    EXPECT_EQ(a->phase(), InstPhase::Renamed);
    EXPECT_EQ(a->fetchCycle(), kNoCycle);
    EXPECT_FALSE(a->inIq());
}

} // namespace
} // namespace vpr
