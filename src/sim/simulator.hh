/**
 * @file
 * Simulator: owns a trace stream and a core, runs the warm-up /
 * measurement protocol, and reports results.
 */

#ifndef VPR_SIM_SIMULATOR_HH
#define VPR_SIM_SIMULATOR_HH

#include <memory>
#include <ostream>
#include <string>

#include "sim/config.hh"
#include "sim/metrics.hh"
#include "trace/stream.hh"

namespace vpr
{

/**
 * Results of one measured simulation interval: a self-describing
 * MetricsRecord keyed by stable metric names, produced by visiting the
 * core's stat groups. The named accessors below are conveniences over
 * the record; exporters iterate metrics.all() and need no per-field
 * knowledge.
 */
struct SimResults
{
    MetricsRecord metrics;

    /** Convenience lookups over the record. @{ */
    double ipc() const { return metrics.real("core.ipc"); }
    std::uint64_t cycles() const { return metrics.counter("core.cycles"); }

    std::uint64_t
    committed() const
    {
        return metrics.counter("commit.committed");
    }

    std::uint64_t issued() const { return metrics.counter("issue.issued"); }

    std::uint64_t
    squashed() const
    {
        return metrics.counter("core.squashed");
    }

    std::uint64_t
    mispredicts() const
    {
        return metrics.counter("fetch.mispredicts");
    }

    std::uint64_t
    wbRejections() const
    {
        return metrics.counter("complete.wb_rejections");
    }

    std::uint64_t
    renameStallReg() const
    {
        return metrics.counter("rename.stall_reg");
    }

    double
    executionsPerCommit() const
    {
        return metrics.real("core.exec_per_commit");
    }

    double
    cacheMissRate() const
    {
        return metrics.real("memory.cache_miss_rate");
    }

    double bhtAccuracy() const { return metrics.real("branch.bht_accuracy"); }

    double
    meanHoldCyclesInt() const
    {
        return metrics.real("rename.mean_hold_cycles_int");
    }

    double
    meanHoldCyclesFp() const
    {
        return metrics.real("rename.mean_hold_cycles_fp");
    }

    double
    avgBusyIntRegs() const
    {
        return metrics.real("regfile.occupancy.int.mean");
    }

    double
    avgBusyFpRegs() const
    {
        return metrics.real("regfile.occupancy.fp.mean");
    }

    double
    robOccupancyMean() const
    {
        return metrics.real("rob.occupancy.mean");
    }

    double
    regLifetimeMean(RegClass cls) const
    {
        return metrics.real(cls == RegClass::Int
                                ? "rename.vp.lifetime.int.mean"
                                : "rename.vp.lifetime.fp.mean");
    }
    /** @} */
};

/** One simulation run: stream + core + measurement protocol. */
class Simulator
{
  public:
    /** Build with an externally owned stream. */
    Simulator(TraceStream &stream, const SimConfig &config);

    /** Build by benchmark name (owns the stream). */
    Simulator(const std::string &benchmark, const SimConfig &config);

    /**
     * Re-arm this simulator for another run as if freshly constructed
     * with (@p benchmark, @p config): rewind the owned stream and return
     * the core to its constructed state in place — reusing every
     * allocation the previous cell warmed up — or rebuild the core when
     * the core-level configuration differs. Results are asserted
     * byte-identical to a fresh construction by the determinism suite.
     *
     * @return false (simulator untouched) when reuse is impossible: the
     * stream is externally owned, the benchmark differs, or the seed
     * differs (the owned stream was built with the old seed).
     */
    bool reinit(const std::string &benchmark, const SimConfig &config);

    /**
     * Run the measurement protocol and return stats. With sampling off
     * (the default): warm up for skipInsts, measure for measureInsts
     * contiguously. With sim.sampling.enable: fast-forward through
     * skipInsts, then alternate fast-forward / detailed warm-up /
     * measured intervals per the sim.sampling.* geometry; the returned
     * record aggregates the intervals and appends the
     * core.ipc.sampled.{mean,stderr,ci95,intervals} estimator.
     */
    SimResults run();

    /** Print a human-readable report of the last run. */
    void printReport(std::ostream &os, const SimResults &r) const;

    Core &core() { return *theCore; }
    const Core &core() const { return *theCore; }

  private:
    /** The sampled phase machine behind run(). */
    SimResults runSampled();

    /** Build the result record by walking the core's stats tree. */
    void collectMetrics(MetricsRecord &m);

    /** Replace the core with a freshly constructed one (restore target
     *  and cold fallback both start from construction defaults). */
    void rebuildCore();

    /** Checkpointing engaged for this run? Requires a cache directory,
     *  a warm-up to skip, and a stream that advertises an identity. */
    bool ckptActive() const;

    /**
     * Try to restore the warm-up from the checkpoint cache; true on
     * success (the core is rebuilt and loaded, positioned exactly after
     * a drained warm-up). A missing file returns false with the core
     * untouched; a bad file (corrupt, version skew, stale digest) warns,
     * rewinds the stream, rebuilds the core and returns false — the
     * caller falls back to a cold warm-up, never to a wrong result.
     */
    bool tryRestoreCheckpoint(CkptScope scope);

    /**
     * Serialize the drained core, optionally write it to the cache, and
     * reload it into a freshly constructed core. Cold and restored runs
     * thus both measure from a constructed-then-loaded core, making
     * them byte-identical by construction — and every cold run
     * exercises the restore path.
     */
    void saveAndReloadCheckpoint(CkptScope scope);

    SimConfig cfg;
    std::string benchName;
    std::unique_ptr<TraceStream> ownedStream;
    TraceStream *stream = nullptr;  ///< the core's stream, owned or not
    std::unique_ptr<Core> theCore;
};

} // namespace vpr

#endif // VPR_SIM_SIMULATOR_HH
