/** @file Tests for the rename-scheme factory/registry. */

#include <gtest/gtest.h>

#include "rename/conventional.hh"
#include "rename/factory.hh"

namespace vpr
{
namespace
{

RenameConfig
cfg()
{
    RenameConfig rc;
    rc.numPhysRegs = 64;
    rc.numVPRegs = 160;
    rc.nrrInt = 8;
    rc.nrrFp = 8;
    return rc;
}

TEST(RenameFactory, EveryEnumeratorConstructs)
{
    const RenameScheme all[] = {
        RenameScheme::Conventional,
        RenameScheme::VPAllocAtWriteback,
        RenameScheme::VPAllocAtIssue,
        RenameScheme::ConventionalEarlyRelease,
    };
    for (RenameScheme s : all) {
        auto rn = makeRenamer(s, cfg());
        ASSERT_NE(rn, nullptr) << renameSchemeName(s);
        EXPECT_EQ(rn->scheme(), s);
        EXPECT_STRNE(renameSchemeName(s), "");
    }
}

TEST(RenameFactory, RegistryListsEveryBuiltinScheme)
{
    auto schemes = registeredRenameSchemes();
    EXPECT_EQ(schemes.size(), 4u);
    for (RenameScheme s : schemes) {
        auto rn = makeRenamer(s, cfg());
        EXPECT_EQ(rn->scheme(), s);
    }
}

TEST(RenameFactory, ReRegistrationReplacesTheFactory)
{
    static int constructions = 0;
    constructions = 0;
    registerRenameScheme(RenameScheme::Conventional, "conventional",
                         [](const RenameConfig &c) {
                             ++constructions;
                             return std::make_unique<ConventionalRename>(
                                 c);
                         });
    auto rn = makeRenamer(RenameScheme::Conventional, cfg());
    EXPECT_EQ(constructions, 1);
    EXPECT_EQ(rn->scheme(), RenameScheme::Conventional);

    // Restore the stock factory for the rest of the suite.
    registerRenameScheme(RenameScheme::Conventional, "conventional",
                         [](const RenameConfig &c) {
                             return std::make_unique<ConventionalRename>(
                                 c);
                         });
}

TEST(RenameFactory, SchemeNamesAreStable)
{
    EXPECT_STREQ(renameSchemeName(RenameScheme::Conventional),
                 "conventional");
    EXPECT_STREQ(renameSchemeName(RenameScheme::VPAllocAtWriteback),
                 "vp-writeback");
    EXPECT_STREQ(renameSchemeName(RenameScheme::VPAllocAtIssue),
                 "vp-issue");
    EXPECT_STREQ(renameSchemeName(RenameScheme::ConventionalEarlyRelease),
                 "conv-early-release");
}

} // namespace
} // namespace vpr
