/**
 * @file
 * Ablation: instruction-window (ROB) size sweep.
 *
 * The paper's conclusion argues the virtual-physical benefit grows for
 * "future architectures with a larger instruction window and thus, a
 * much higher register pressure". This bench sweeps the ROB from 32 to
 * 256 entries at a fixed 64-register file and reports the VP/conv
 * speedup per window size. Grid/table: bench/figures/.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return vpr::bench::figureMain("ablation_window", argc, argv);
}
