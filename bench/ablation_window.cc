/**
 * @file
 * Ablation: instruction-window (ROB) size sweep.
 *
 * The paper's conclusion argues the virtual-physical benefit grows for
 * "future architectures with a larger instruction window and thus, a
 * much higher register pressure". This bench sweeps the ROB from 32 to
 * 256 entries at a fixed 64-register file and reports the VP/conv
 * speedup per window size.
 */

#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);

    const std::vector<std::size_t> windows = {32, 64, 128, 256};
    std::vector<std::string> cols;
    for (auto w : windows)
        cols.push_back("ROB=" + std::to_string(w));
    printTableHeader(std::cout,
                     "Ablation: VP speedup vs window size (64 regs, "
                     "write-back alloc, NRR=32)",
                     cols);

    // Grid: (conv, vp) per (benchmark × window size), run on the engine.
    const auto &names = benchmarkNames();
    std::vector<GridCell> cells;
    for (const auto &name : names) {
        for (std::size_t w : windows) {
            SimConfig config = experimentConfig();
            config.core.robSize = w;
            config.core.iqSize = w;
            config.core.lsqSize = w;
            config.setPhysRegs(64, 32);  // resizes the VP pool too

            config.setScheme(RenameScheme::Conventional);
            cells.push_back({name, config});
            config.setScheme(RenameScheme::VPAllocAtWriteback);
            cells.push_back({name, config});
        }
    }
    std::vector<SimResults> results =
        runGrid(cells, defaultJobs());

    std::vector<std::vector<double>> colVals(windows.size());
    for (std::size_t bi = 0; bi < names.size(); ++bi) {
        std::vector<double> row;
        for (std::size_t i = 0; i < windows.size(); ++i) {
            double conv = results[2 * (bi * windows.size() + i)].ipc();
            double vp = results[2 * (bi * windows.size() + i) + 1].ipc();
            row.push_back(vp / conv);
            colVals[i].push_back(vp / conv);
        }
        printTableRow(std::cout, names[bi], row, 3);
    }
    std::cout << std::string(12 + 12 * windows.size(), '-') << "\n";
    std::vector<double> means;
    for (const auto &col : colVals)
        means.push_back(geoMean(col));
    printTableRow(std::cout, "geomean", means, 3);

    std::cout << "\nexpectation: the speedup is a non-decreasing "
                 "function of the window size — a small window cannot "
                 "out-run 32 rename registers, a large one starves the "
                 "conventional scheme (paper, Conclusions).\n";
    return 0;
}
