/**
 * @file
 * Explicit inter-stage latches and ports.
 *
 * Instead of stages mutating each other's members, every inter-stage
 * signal travels through one of these objects, owned by the composition
 * root and injected into the stages that drive or sample them:
 *
 *   CompletionQueue   issue -> complete: scheduled completion events and
 *                     stores parked on an in-flight data operand.
 *   FetchBufferPort   fetch -> rename: the fetch buffer's consumer side.
 *   FetchRedirectPort complete -> fetch: the branch-resolution wire.
 */

#ifndef VPR_CORE_STAGES_LATCHES_HH
#define VPR_CORE_STAGES_LATCHES_HH

#include <algorithm>
#include <queue>
#include <vector>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "core/dyn_inst.hh"
#include "core/fetch.hh"

namespace vpr
{

/** A scheduled "instruction finishes execution" event. Carries the
 *  hot-pool slot so the complete stage's staleness check reads only the
 *  packed arrays. */
struct CompletionEvent
{
    Cycle when;
    InstSeqNum seq;
    DynInst *inst;
    HotIdx slot;

    bool
    operator>(const CompletionEvent &o) const
    {
        return when != o.when ? when > o.when : seq > o.seq;
    }
};

/**
 * The issue→complete latch: a time-ordered queue of completion events
 * plus the issued stores waiting for their data operand. Events for
 * squashed instructions are filtered lazily at pop time (the ROB slot
 * may have been reused, so the (seq, phase) pair is re-checked), which
 * keeps recovery O(squashed instructions).
 *
 * The default mechanism is a cycle-indexed calendar (timing wheel): a
 * power-of-two ring of per-cycle buckets spanning the maximum FU/cache
 * latency, plus an overflow list for the rare event beyond the horizon
 * (unbounded write-port slip, MSHR queueing). schedule() is an append
 * and popDue() drains one bucket — O(1) each, no heap sifts over
 * 32-byte events. Within a cycle, events drain in ascending sequence
 * number, which is exactly the (when, seq) order of the legacy
 * std::priority_queue; the heap survives behind `core.cq.calendar`
 * (constructor flag) as a reference path, and the determinism test
 * asserts every exported metric byte-identical between the two.
 */
class CompletionQueue
{
  public:
    /**
     * @param useCalendar  select the calendar ring (default) or the
     *                     legacy binary heap.
     * @param horizonHint  minimum ring span in cycles; rounded up to a
     *                     power of two. Events scheduled further out
     *                     than the ring spans go to the overflow list
     *                     and migrate in as the wheel turns.
     */
    explicit CompletionQueue(bool useCalendar = true,
                             Cycle horizonHint = 128)
        : calendar(useCalendar),
          horizon(Cycle{1} << ceilLog2(horizonHint < 2 ? 2 : horizonHint)),
          buckets(useCalendar ? static_cast<std::size_t>(horizon) : 0)
    {
    }

    /** Schedule @p inst to complete at @p when. */
    void
    schedule(Cycle when, InstSeqNum seq, DynInst *inst)
    {
        if (!calendar) {
            events.push({when, seq, inst, inst->slot});
            return;
        }
        VPR_ASSERT(when >= base, "scheduling into the drained past: when=",
                   when, " base=", base);
        ++nEvents;
        if (when >= base + horizon) {
            overflow.push_back({when, seq, inst, inst->slot});
            overflowMin = std::min(overflowMin, when);
            return;
        }
        buckets[static_cast<std::size_t>(when & (horizon - 1))].push_back(
            {when, seq, inst, inst->slot});
        if (when == base)
            curSorted = false;
    }

    /** Is an event due at or before @p now? (Advances the wheel past
     *  drained buckets; the wheel never skips a non-empty one.) */
    bool
    hasDue(Cycle now)
    {
        if (!calendar)
            return !events.empty() && events.top().when <= now;
        advanceTo(now);
        return base <= now &&
               drainIdx < buckets[curBucket()].size();
    }

    /** Pop the next due event (caller must check hasDue). */
    CompletionEvent
    popDue()
    {
        if (!calendar) {
            CompletionEvent ev = events.top();
            events.pop();
            return ev;
        }
        auto &b = buckets[curBucket()];
        VPR_ASSERT(drainIdx < b.size(), "popDue without a due event");
        if (!curSorted) {
            std::sort(b.begin() + static_cast<std::ptrdiff_t>(drainIdx),
                      b.end(),
                      [](const CompletionEvent &a,
                         const CompletionEvent &o) { return a.seq < o.seq; });
            curSorted = true;
        }
        CompletionEvent ev = b[drainIdx++];
        --nEvents;
        if (drainIdx == b.size()) {
            b.clear();
            drainIdx = 0;
        }
        return ev;
    }

    std::size_t
    pendingEvents() const
    {
        return calendar ? nEvents : events.size();
    }

    /** Park an issued store until its data operand is produced. */
    void
    parkStore(DynInst *inst, InstSeqNum seq)
    {
        storesAwaitingData.emplace_back(inst, seq, inst->slot);
    }

    std::vector<ReadyRef> &
    parkedStores()
    {
        return storesAwaitingData;
    }

    std::size_t parkedStoreCount() const { return storesAwaitingData.size(); }

    /** Drop parked stores younger than @p youngestKept (recovery). */
    void
    squashYoungerThan(InstSeqNum youngestKept)
    {
        std::size_t keep = 0;
        for (auto &entry : storesAwaitingData)
            if (entry.seq <= youngestKept)
                storesAwaitingData[keep++] = entry;
        storesAwaitingData.resize(keep);
    }

    /** True if any event or parked store references @p seq (tests).
     *  Calendar: walk the live bucket remainders and the overflow list.
     *  Heap: linear scan of the underlying container (no copy-and-pop). */
    bool
    pendingFor(InstSeqNum seq) const
    {
        if (calendar) {
            for (std::size_t i = 0; i < buckets.size(); ++i) {
                std::size_t from = i == curBucket() ? drainIdx : 0;
                const auto &b = buckets[i];
                for (std::size_t j = from; j < b.size(); ++j)
                    if (b[j].seq == seq)
                        return true;
            }
            for (const auto &ev : overflow)
                if (ev.seq == seq)
                    return true;
        } else {
            for (const auto &ev : heapContainer(events))
                if (ev.seq == seq)
                    return true;
        }
        for (const auto &ref : storesAwaitingData)
            if (ref.seq == seq)
                return true;
        return false;
    }

    /** Return to the constructed state: no events, wheel rewound to
     *  cycle zero, no parked stores (simulator reuse between grid
     *  cells). Bucket capacities stay resident. */
    void
    clear()
    {
        for (auto &b : buckets)
            b.clear();
        overflow.clear();
        overflowMin = kNoCycle;
        base = 0;
        drainIdx = 0;
        curSorted = true;
        nEvents = 0;
        events = EventHeap();
        storesAwaitingData.clear();
    }

  private:
    using EventHeap =
        std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                            std::greater<CompletionEvent>>;

    /** Read access to the heap's underlying vector: the standard
     *  guarantees a protected member `c`; the derived-class
     *  member-pointer trick exposes it without copying the queue. */
    static const std::vector<CompletionEvent> &
    heapContainer(const EventHeap &q)
    {
        struct Access : EventHeap
        {
            static const std::vector<CompletionEvent> &
            get(const EventHeap &h)
            {
                return h.*&Access::c;
            }
        };
        return Access::get(q);
    }

    std::size_t
    curBucket() const
    {
        return static_cast<std::size_t>(base & (horizon - 1));
    }

    /** Turn the wheel: advance past drained buckets up to @p now,
     *  pulling overflow events in as they come within the horizon. The
     *  wheel stops at the first non-empty bucket, so late drains (a
     *  caller that skipped cycles) still pop in (when, seq) order. */
    void
    advanceTo(Cycle now)
    {
        if (nEvents == 0 && overflow.empty()) {
            // Empty wheel: jump straight to now. This is the common
            // case after a sampled fast-forward, where the clock leaps
            // thousands of cycles past a quiesced (event-free) core —
            // walking every intervening bucket would cost O(jump).
            if (base < now) {
                base = now;
                drainIdx = 0;
                curSorted = false;
            }
            return;
        }
        while (base < now) {
            maybeMigrate();
            auto &b = buckets[curBucket()];
            if (drainIdx < b.size())
                return;
            b.clear();
            drainIdx = 0;
            ++base;
            curSorted = false;
        }
        maybeMigrate();
    }

    /** Move overflow events that fit the ring now into their buckets. */
    void
    maybeMigrate()
    {
        if (overflow.empty() || overflowMin >= base + horizon)
            return;
        std::size_t keep = 0;
        Cycle newMin = kNoCycle;
        for (const CompletionEvent &ev : overflow) {
            if (ev.when < base + horizon) {
                buckets[static_cast<std::size_t>(ev.when & (horizon - 1))]
                    .push_back(ev);
                if (ev.when == base)
                    curSorted = false;
            } else {
                overflow[keep++] = ev;
                newMin = std::min(newMin, ev.when);
            }
        }
        overflow.resize(keep);
        overflowMin = newMin;
    }

    const bool calendar;
    const Cycle horizon;          ///< ring span (power of two)

    // --- calendar state ---------------------------------------------------
    std::vector<std::vector<CompletionEvent>> buckets;
    std::vector<CompletionEvent> overflow; ///< events beyond the horizon
    Cycle overflowMin = kNoCycle; ///< earliest overflow `when`
    Cycle base = 0;               ///< no event is due before this cycle
    std::size_t drainIdx = 0;     ///< consumed prefix of bucket[base]
    bool curSorted = true;        ///< bucket[base] tail is seq-sorted
    std::size_t nEvents = 0;

    // --- legacy heap (reference path) --------------------------------------
    EventHeap events;

    /** Issued stores whose data operand has not been produced yet; they
     *  complete once the data broadcast arrives. */
    std::vector<ReadyRef> storesAwaitingData;
};

/** The consumer side of the fetch buffer (fetch→rename latch). */
class FetchBufferPort
{
  public:
    explicit FetchBufferPort(FetchUnit &unit) : fetch(unit) {}

    bool hasInst() const { return fetch.hasInst(); }
    const FetchedInst &peek() const { return fetch.peek(); }
    FetchedInst pop() { return fetch.pop(); }

  private:
    FetchUnit &fetch;
};

/** The branch-resolution wire (complete→fetch). Driving it redirects
 *  fetch immediately, within the same cycle — the consumer stages that
 *  tick later this cycle (rename, fetch) observe the flushed buffer. */
class FetchRedirectPort
{
  public:
    explicit FetchRedirectPort(FetchUnit &unit) : fetch(unit) {}

    void redirect(Cycle now) { fetch.resolveBranch(now); }

  private:
    FetchUnit &fetch;
};

} // namespace vpr

#endif // VPR_CORE_STAGES_LATCHES_HH
