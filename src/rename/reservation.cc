#include "rename/reservation.hh"

#include "common/logging.hh"

namespace vpr
{

namespace
{

/** Smallest power of two >= max(cap, 64). The in-flight window is
 *  bounded by the ROB, so one or two doublings settle the ring for the
 *  life of the tracker. */
std::size_t
ringCapacityFor(std::size_t cap)
{
    std::size_t size = 64;
    while (size < cap)
        size *= 2;
    return size;
}

} // namespace

ReservationTracker::ReservationTracker(unsigned nrr_)
    : nrr(nrr_), ring(ringCapacityFor(0))
{
    VPR_ASSERT(nrr >= 1, "NRR must be at least 1 to avoid deadlock");
}

void
ReservationTracker::reserve(std::size_t cap)
{
    if (cap <= ring.size())
        return;
    std::vector<Entry> bigger(ringCapacityFor(cap));
    for (std::size_t i = 0; i < num; ++i)
        bigger[i] = at(i);
    ring.swap(bigger);
    head = 0;
}

std::size_t
ReservationTracker::lowerBound(InstSeqNum s) const
{
    std::size_t lo = 0, hi = num;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (at(mid).seq < s)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

void
ReservationTracker::onRename(InstSeqNum seq)
{
    VPR_ASSERT(num == 0 || at(num - 1).seq < seq,
               "rename out of program order");
    if (num == ring.size())
        reserve(num + 1);
    ++num;
    at(num - 1) = {seq, false};
}

void
ReservationTracker::onAllocate(InstSeqNum seq)
{
    // Entries are age-ordered (rename is in program order), so the
    // instruction is found by binary search rather than a walk of the
    // whole in-flight window.
    const std::size_t i = lowerBound(seq);
    if (i == num || at(i).seq != seq)
        VPR_PANIC("onAllocate: unknown instruction sn:", seq);
    VPR_ASSERT(!at(i).allocated, "double allocation for sn:", seq);
    at(i).allocated = true;
    if (i < reservedCount())
        ++usedRes;
}

void
ReservationTracker::onCommit(InstSeqNum seq)
{
    VPR_ASSERT(num != 0 && at(0).seq == seq,
               "commit of non-oldest dest instruction sn:", seq);
    if (at(0).allocated)
        --usedRes;
    // The old (nrr+1)-th oldest entry (if any) enters the reserved set.
    if (num > nrr && at(nrr).allocated)
        ++usedRes;
    head = (head + 1) & (ring.size() - 1);
    --num;
}

void
ReservationTracker::onSquash(InstSeqNum seq)
{
    VPR_ASSERT(num != 0 && at(num - 1).seq == seq,
               "squash of non-youngest dest instruction sn:", seq);
    if (num <= nrr && at(num - 1).allocated)
        --usedRes;
    --num;
}

bool
ReservationTracker::isReserved(InstSeqNum seq) const
{
    const std::size_t lim = reservedCount();
    if (lim == 0 || seq > at(lim - 1).seq)
        return false;
    const std::size_t i = lowerBound(seq);
    return i < lim && at(i).seq == seq;
}

bool
ReservationTracker::mayAllocate(InstSeqNum seq, std::size_t freeRegs) const
{
    if (freeRegs == 0)
        return false;
    // Reserved instructions may always take a register (one is kept for
    // each of them by construction).
    if (isReserved(seq))
        return true;
    // Younger instructions must leave enough registers for the
    // not-yet-allocated part of the reserved set.
    unsigned needed = nrr - usedInReserved();
    return freeRegs > needed;
}

} // namespace vpr
