/**
 * @file
 * Load/store queue with PA-8000-style memory disambiguation.
 *
 * The paper assumes the memory disambiguation scheme of the PA-8000's
 * address-reorder buffer: loads may execute out of order with respect to
 * stores only once every older store's address is known; a load whose
 * address matches an older store forwards the store's data instead of
 * accessing the cache. Stores update the data cache at commit.
 *
 * Disambiguation is resolved through an address-indexed store table
 * instead of scanning the queue: in-flight stores with computed
 * addresses are hashed at disambiguation-line granularity (16 bytes,
 * >= the largest access, so any overlapping store shares a line with
 * the load), and stores whose addresses are still unknown sit on a
 * seq-sorted watermark list. A load's check reduces to "youngest older
 * store that is unknown or overlaps" — O(1) expected instead of
 * O(queue). The legacy reverse scan survives behind setScanDisambig()
 * as a reference path; a determinism test asserts both byte-identical.
 *
 * Holds are events, not polls: the issue stage subscribes a held load
 * to its blocking store (subscribeHold), the blocker's address
 * computation or commit releases the subscription, and takeReadyHolds()
 * hands the re-attemptable loads back to the issue stage at exactly the
 * cycle the legacy every-cycle re-scan would have unblocked them.
 */

#ifndef VPR_CORE_LSQ_HH
#define VPR_CORE_LSQ_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "core/dyn_inst.hh"

namespace vpr
{

/** A disambiguation verdict: the hold and the store that caused it
 *  (null when Ready). */
struct LoadCheck
{
    LoadHold hold = LoadHold::Ready;
    const DynInst *blocker = nullptr;
};

/** The load/store queue (a single age-ordered structure). */
class Lsq
{
  public:
    explicit Lsq(std::size_t capacity)
        : cap(capacity),
          occupancy(stats::Distribution::evenBuckets(
              "occupancy", "entries occupied per cycle", 0, capacity, 16))
    {
        group.add(&occupancy);
        group.add(&nForwards);
        group.add(&nUnknownHolds);
        group.add(&nPartialHolds);
    }

    bool full() const { return list.size() >= cap; }
    bool empty() const { return list.empty(); }
    std::size_t size() const { return list.size(); }
    std::size_t capacity() const { return cap; }

    /** Insert a memory instruction at rename (program order). */
    void insert(DynInst *inst);

    /** Remove the entry for @p inst (at commit). A removed store
     *  releases the hold subscriptions parked on it, due this cycle
     *  (commit ticks before issue). */
    void remove(DynInst *inst);

    /** Remove every entry younger than @p seq (branch recovery). */
    void squashYoungerThan(InstSeqNum seq);

    /**
     * Disambiguation check for @p load at cycle @p now: find the
     * youngest older store with an unknown or conflicting address.
     * Table path by default; setScanDisambig(true) selects the legacy
     * youngest-to-oldest queue scan (byte-identical results).
     */
    LoadCheck disambiguate(const DynInst *load, Cycle now);

    /** Hold-only convenience wrapper around disambiguate(). */
    LoadHold
    checkLoad(const DynInst *load, Cycle now)
    {
        return disambiguate(load, now).hold;
    }

    /**
     * The store @p inst computed its effective address (issue stage,
     * first execution): index it in the line table and release its
     * unknown-address hold subscriptions at the address's visibility
     * cycle (inst->addrReadyCycle, set by the caller).
     */
    void onStoreAddrComputed(DynInst *inst);

    /**
     * Park @p load until @p blocker resolves: an UnknownAddress hold
     * releases when the blocker's address becomes visible, a
     * PartialOverlap hold when the blocker leaves the queue at commit.
     */
    void subscribeHold(DynInst *load, const DynInst *blocker,
                       LoadHold hold);

    /** Append the held loads whose release is due at @p now to @p out
     *  (the issue stage validates and sorts them). */
    void takeReadyHolds(Cycle now, std::vector<ReadyRef> &out);

    /** Use the legacy full-queue disambiguation scan (reference path
     *  for the determinism test). */
    void setScanDisambig(bool scan) { scanDisambig = scan; }

    /** Statistics. @{ */
    std::uint64_t forwards() const { return nForwards.value(); }
    std::uint64_t unknownAddrHolds() const { return nUnknownHolds.value(); }
    std::uint64_t partialOverlapHolds() const
    {
        return nPartialHolds.value();
    }
    /** @} */

    /** Account a hold decision (called by the core at issue time). */
    void recordHold(LoadHold h);

    /** Record this cycle's occupancy (called once per cycle). */
    void sampleOccupancy() { occupancy.sample(list.size()); }

    /** Register the "lsq" stat group into the core's stats tree. */
    void regStats(stats::StatRegistry &r) { r.add(&group); }

    const std::deque<DynInst *> &entries() const { return list; }

    void clear();

  private:
    /** Disambiguation granularity: 16-byte lines, >= the largest
     *  access size, so an overlapping store always shares at least one
     *  line with the load and each access touches at most two lines. */
    static constexpr unsigned kLineShift = 4;

    /** A released hold waiting for its wake cycle. Carries the hot-pool
     *  slot so the issue stage's validity check stays in the packed
     *  arrays. */
    struct HoldRelease
    {
        DynInst *inst;
        InstSeqNum seq;
        HotIdx slot;
        Cycle wake;
    };

    static bool
    overlap(Addr a, unsigned aSize, Addr b, unsigned bSize)
    {
        return a < b + bSize && b < a + aSize;
    }

    /** First and last disambiguation lines touched by an access. */
    static Addr firstLine(const DynInst *m);
    static Addr lastLine(const DynInst *m);

    /** Legacy reference path: reverse queue walk. */
    LoadCheck scanCheck(const DynInst *load, Cycle now) const;

    /** Erase @p seq from the unknown-address list if present. */
    void eraseUnknown(InstSeqNum seq);

    /** Drop the due entries of pendingKnown (stores whose addresses
     *  became visible by @p now) from the unknown list. */
    void flushKnown(Cycle now);

    /** Remove a store's line-table entries (commit or squash). */
    void eraseLineEntries(DynInst *store);

    /** Move the subscribers of blocker @p seq to the pending-release
     *  list with wake cycle @p wake. */
    void releaseSubs(InstSeqNum seq, Cycle wake);

    std::size_t cap;
    std::deque<DynInst *> list;  ///< program order, front = oldest

    /** Line address -> in-flight stores with computed addresses. */
    std::unordered_map<Addr, std::vector<ReadyRef>> lineTable;
    /** Stores whose addresses are not visible yet, seq-ascending (the
     *  back is the unknown-address watermark). */
    std::vector<ReadyRef> unknownStores;
    /** FIFO of (store seq, visibility cycle): a computed address stays
     *  "unknown" until its cycle passes, then the unknown-list entry is
     *  flushed eagerly so queries never wade through stale entries. */
    std::deque<std::pair<InstSeqNum, Cycle>> pendingKnown;

    /** Blocking-store seq -> loads parked on it. */
    std::unordered_map<InstSeqNum, std::vector<ReadyRef>> holdSubs;
    /** Released holds waiting for their wake cycle. */
    std::vector<HoldRelease> pendingRelease;

    bool scanDisambig = false;

    stats::StatGroup group{"lsq"};
    stats::Distribution occupancy;
    stats::Scalar nForwards{"forwards", "store-to-load forwards"};
    stats::Scalar nUnknownHolds{"unknown_addr_holds",
                                "loads held on an unknown store address"};
    stats::Scalar nPartialHolds{
        "partial_overlap_holds",
        "loads held on a partial store overlap"};
};

} // namespace vpr

#endif // VPR_CORE_LSQ_HH
